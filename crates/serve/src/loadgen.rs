//! The replay load generator and the in-process reference driver.
//!
//! The load generator joins every client of a seeded scenario over one
//! connection, then drives `SelectCohort` → train → `TrainResult`
//! epochs, timing sustained selections/sec. Training feedback is
//! *synthesized deterministically* from the scenario seed
//! ([`synth_train_result`]): latencies and costs come from the same
//! columnar epoch realizations the server prices with, and the learning
//! signals from per-client seeded streams — so an in-process run of the
//! identical policy over the identical contexts ([`reference_run`])
//! must reproduce the served selections bit-for-bit. That equality is
//! the protocol's determinism contract (docs/SERVE.md) and is enforced
//! by `--verify-reference`, the determinism tests, and the `serve` CI
//! stage.

use std::time::Instant;

use fedl_core::columnar::nominal_latency;
use fedl_json::{obj, Value};
use fedl_linalg::par::det_sum;
use fedl_linalg::rng::{rng_for, Rng};
use fedl_net::{ChannelModel, LatencyModel};
use fedl_sim::{BudgetLedger, ClientColumns, EpochReport};
use fedl_telemetry::Telemetry;

use crate::proto::{decode_frame, encode_frame, Message, ProtocolError, PROTOCOL_VERSION};
use crate::server::{select_for_epoch, ServeConfig};
use crate::transport::FrameTransport;

/// One served (or reference) selection, the unit the determinism
/// checks compare. Epochs where nobody was available appear with an
/// empty cohort so interrupted and uninterrupted runs stay aligned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionRecord {
    /// Epoch index.
    pub epoch: usize,
    /// Selected client ids (empty when the epoch was skipped).
    pub cohort: Vec<usize>,
    /// Iterations the cohort was asked to run.
    pub iterations: usize,
}

impl SelectionRecord {
    /// One compact JSON line (`{"epoch":..,"cohort":[..],"iterations":..}`),
    /// the loadgen `--out` format: concatenating the halves of an
    /// interrupted run must byte-compare equal to the full run's file.
    pub fn to_json_line(&self) -> String {
        obj(vec![
            ("epoch", Value::from(self.epoch)),
            ("cohort", Value::Arr(self.cohort.iter().map(|&k| Value::from(k)).collect())),
            ("iterations", Value::from(self.iterations)),
        ])
        .to_json()
    }
}

/// Deterministic synthetic training feedback for one epoch.
pub struct SynthResult {
    /// Per-iteration latency of each cohort client (cohort order).
    pub per_client_iter_latency: Vec<f64>,
    /// Wall-clock epoch latency: slowest client × iterations.
    pub latency_secs: f64,
    /// Total rental cost (sum of the epoch's realized prices).
    pub cost: f64,
    /// Seeded local accuracies in `(0, 1)`.
    pub eta_hats: Vec<f32>,
    /// Decaying global loss.
    pub global_loss: f64,
    /// Seeded first-order coefficients (negative: descent).
    pub grad_dot_delta: Vec<f32>,
    /// Seeded local losses around the decaying global loss.
    pub local_losses: Vec<f32>,
}

impl SynthResult {
    /// The wire message carrying this feedback.
    pub fn to_message(&self, epoch: usize, cohort: &[usize], iterations: usize) -> Message {
        Message::TrainResult {
            epoch,
            cohort: cohort.to_vec(),
            iterations,
            latency_secs: self.latency_secs,
            per_client_iter_latency: self.per_client_iter_latency.clone(),
            cost: self.cost,
            eta_hats: self.eta_hats.clone(),
            global_loss: self.global_loss,
            grad_dot_delta: self.grad_dot_delta.clone(),
            local_losses: self.local_losses.clone(),
        }
    }

    /// The [`EpochReport`] the server reconstructs from
    /// [`Self::to_message`] — the reference driver feeds this to
    /// `observe` directly.
    pub fn to_report(&self, epoch: usize, cohort: &[usize], iterations: usize) -> EpochReport {
        EpochReport {
            epoch,
            cohort: cohort.to_vec(),
            iterations,
            latency_secs: self.latency_secs,
            per_client_iter_latency: self.per_client_iter_latency.clone(),
            cost: self.cost,
            eta_hats: self.eta_hats.clone(),
            global_loss_all: self.global_loss,
            global_loss_selected: self.global_loss,
            grad_dot_delta: self.grad_dot_delta.clone(),
            local_losses: self.local_losses.clone(),
            failed: Vec::new(),
        }
    }
}

/// Synthesizes the cohort's training feedback for `epoch`: real
/// latency/cost columns from the scenario realization, learning signals
/// from per-client seeded streams (`rng_for(seed_k, tag(epoch))`), so
/// every driver — loadgen, reference, tests — produces identical bytes.
pub fn synth_train_result(
    cols: &ClientColumns,
    config: &ServeConfig,
    channel: &ChannelModel,
    latency: &LatencyModel,
    epoch: usize,
    cohort: &[usize],
    iterations: usize,
) -> SynthResult {
    let now = cols.epoch_columns(epoch, &config.env, channel);
    let share = config.min_participants.max(1);
    let per_client_iter_latency = nominal_latency(cols, &now, latency, share, cohort);
    let member_costs: Vec<f64> = cohort.iter().map(|&k| now.cost[k]).collect();
    let mut eta_hats = Vec::with_capacity(cohort.len());
    let mut grad_dot_delta = Vec::with_capacity(cohort.len());
    let mut local_losses = Vec::with_capacity(cohort.len());
    for &k in cohort {
        let (eta, grad, loss) = synth_learning_signals(cols.seed[k], epoch);
        eta_hats.push(eta);
        grad_dot_delta.push(grad);
        local_losses.push(loss);
    }
    combine_feedback(
        epoch,
        iterations,
        per_client_iter_latency,
        &member_costs,
        eta_hats,
        grad_dot_delta,
        local_losses,
    )
}

/// One client's synthetic learning signals for `epoch` — `(η̂, J·d_k,
/// local loss)` drawn from `rng_for(seed_k, 0x5E7E_0000 ^ t)` in stream
/// order. A pure function of `(seed_k, epoch)`, so a `fedl-dist` worker
/// computing only its shard's members produces the exact values the
/// single-process [`synth_train_result`] would.
pub fn synth_learning_signals(seed_k: u64, epoch: usize) -> (f32, f32, f32) {
    let decay = 0.97f64.powi(epoch as i32);
    let base_loss = (10.0f64).ln();
    let mut rng = rng_for(seed_k, 0x5E7E_0000 ^ epoch as u64);
    let eta = (0.05 + 0.9 * rng.next_f64()) as f32;
    let grad = -((0.05 + 0.45 * rng.next_f64()) * decay) as f32;
    let loss = (base_loss * (0.85 + 0.3 * rng.next_f64()) * decay) as f32;
    (eta, grad, loss)
}

/// Folds per-member feedback columns (cohort order) into the epoch's
/// [`SynthResult`] — the one place the scalar combination lives, shared
/// by [`synth_train_result`] and the `fedl-dist` coordinator's
/// shard-order merge so both produce identical bits. The cost fold uses
/// [`det_sum`]'s fixed-chunk association (bit-identical to the plain
/// left fold for cohorts up to `DET_CHUNK`, and shard-count-independent
/// beyond it); the latency fold is a max, associative outright.
pub fn combine_feedback(
    epoch: usize,
    iterations: usize,
    per_client_iter_latency: Vec<f64>,
    member_costs: &[f64],
    eta_hats: Vec<f32>,
    grad_dot_delta: Vec<f32>,
    local_losses: Vec<f32>,
) -> SynthResult {
    let slowest = per_client_iter_latency.iter().fold(0.0f64, |a, &b| a.max(b));
    let cost = det_sum(0.0, member_costs.len(), |i| member_costs[i]);
    let decay = 0.97f64.powi(epoch as i32);
    let base_loss = (10.0f64).ln();
    SynthResult {
        latency_secs: slowest * iterations as f64,
        per_client_iter_latency,
        cost,
        eta_hats,
        global_loss: base_loss * decay,
        grad_dot_delta,
        local_losses,
    }
}

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Selection epochs to drive.
    pub epochs: usize,
    /// First epoch to request (non-zero when resuming a served run).
    pub start_epoch: usize,
    /// Send [`Message::Shutdown`] when done.
    pub shutdown: bool,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self { epochs: 10, start_epoch: 0, shutdown: false }
    }
}

/// What a load-generator run produced.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// One record per driven epoch, in order.
    pub selections: Vec<SelectionRecord>,
    /// Simulated clients joined.
    pub clients: usize,
    /// Wall-clock seconds spent in the selection/train loop (joins and
    /// handshake excluded).
    pub elapsed_secs: f64,
    /// `true` when the server reported budget exhaustion.
    pub done: bool,
}

impl LoadgenReport {
    /// Sustained selection throughput over the epoch loop.
    pub fn selections_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.selections.len() as f64 / self.elapsed_secs
        } else {
            f64::INFINITY
        }
    }
}

/// Sends one request and decodes the reply; a wire [`Message::Error`]
/// comes back as the matching [`ProtocolError`] text.
fn rpc(transport: &mut dyn FrameTransport, msg: &Message) -> Result<Message, ProtocolError> {
    transport.send(&encode_frame(msg))?;
    match transport.recv()? {
        Some(frame) => match decode_frame(&frame)? {
            Message::Error { code, detail } => Err(ProtocolError::UnexpectedMessage {
                detail: format!("server refused ({code}): {detail}"),
            }),
            reply => Ok(reply),
        },
        None => Err(ProtocolError::Io { detail: "server closed mid-request".into() }),
    }
}

/// Replays the scenario's client population against a server:
/// handshake, join everyone, then drive `opts.epochs` selection epochs
/// with deterministic synthetic training feedback.
pub fn run_loadgen(
    transport: &mut dyn FrameTransport,
    config: &ServeConfig,
    opts: &LoadgenOptions,
) -> Result<LoadgenReport, ProtocolError> {
    match rpc(
        transport,
        &Message::Hello { protocol_version: PROTOCOL_VERSION, node: "loadgen".to_string() },
    )? {
        Message::Hello { protocol_version, .. }
            if crate::proto::version_accepted(protocol_version) => {}
        Message::Hello { protocol_version, .. } => {
            return Err(ProtocolError::Version { ours: PROTOCOL_VERSION, theirs: protocol_version })
        }
        other => {
            return Err(ProtocolError::UnexpectedMessage {
                detail: format!("expected Hello, got {other:?}"),
            })
        }
    }
    let channel = ChannelModel::default();
    let latency = config.latency_model();
    let cols = ClientColumns::build(&config.env, &channel);
    for client in 0..config.env.num_clients {
        match rpc(transport, &Message::ClientJoin { client })? {
            Message::Snapshot { .. } => {}
            other => {
                return Err(ProtocolError::UnexpectedMessage {
                    detail: format!("expected Snapshot join ack, got {other:?}"),
                })
            }
        }
    }
    let mut selections = Vec::with_capacity(opts.epochs);
    let mut done = false;
    let started = Instant::now();
    for epoch in opts.start_epoch..opts.start_epoch + opts.epochs {
        let reply =
            rpc(transport, &Message::SelectCohort { epoch, trace: crate::proto::Trace::Absent })?;
        let Message::Cohort { epoch: got, cohort, iterations, done: exhausted } = reply else {
            return Err(ProtocolError::UnexpectedMessage {
                detail: format!("expected Cohort, got {reply:?}"),
            });
        };
        if got != epoch {
            return Err(ProtocolError::BadEpoch { expected: epoch, got });
        }
        if exhausted {
            done = true;
            break;
        }
        if cohort.is_empty() {
            selections.push(SelectionRecord { epoch, cohort, iterations: 0 });
            continue;
        }
        let synth =
            synth_train_result(&cols, config, &channel, &latency, epoch, &cohort, iterations);
        match rpc(transport, &synth.to_message(epoch, &cohort, iterations))? {
            Message::Snapshot { .. } => {}
            other => {
                return Err(ProtocolError::UnexpectedMessage {
                    detail: format!("expected Snapshot train ack, got {other:?}"),
                })
            }
        }
        selections.push(SelectionRecord { epoch, cohort, iterations });
    }
    let elapsed_secs = started.elapsed().as_secs_f64();
    if opts.shutdown {
        match rpc(transport, &Message::Shutdown)? {
            Message::Snapshot { .. } => {}
            other => {
                return Err(ProtocolError::UnexpectedMessage {
                    detail: format!("expected Snapshot shutdown ack, got {other:?}"),
                })
            }
        }
    }
    Ok(LoadgenReport { selections, clients: config.env.num_clients, elapsed_secs, done })
}

/// Drives the identical policy over the identical contexts *without*
/// the server or protocol: the in-process baseline a served run must
/// match bit-for-bit. All clients count as registered, matching a
/// loadgen that joined the full population.
pub fn reference_run(config: &ServeConfig, epochs: usize) -> Vec<SelectionRecord> {
    let channel = ChannelModel::default();
    let latency = config.latency_model();
    let cols = ClientColumns::build(&config.env, &channel);
    // Untracked build: regret accounting never feeds back into
    // selections, and the reference exists only to pin selection bytes.
    let mut policy = config.policy.build_untracked(
        config.env.num_clients,
        config.budget,
        config.min_participants,
        config.fedl,
    );
    let mut ledger = BudgetLedger::new(config.budget);
    ledger.set_telemetry(Telemetry::disabled());
    let registered = vec![true; config.env.num_clients];
    let mut records = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        if ledger.exhausted() {
            break;
        }
        let Some((ctx, cohort, iterations)) = select_for_epoch(
            &cols,
            config,
            &channel,
            &latency,
            &registered,
            ledger.remaining(),
            policy.as_mut(),
            epoch,
        ) else {
            records.push(SelectionRecord { epoch, cohort: Vec::new(), iterations: 0 });
            continue;
        };
        let synth =
            synth_train_result(&cols, config, &channel, &latency, epoch, &cohort, iterations);
        ledger.charge(synth.cost);
        policy.observe(&ctx, &synth.to_report(epoch, &cohort, iterations));
        records.push(SelectionRecord { epoch, cohort, iterations });
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerState;
    use crate::transport::InProcessTransport;
    use fedl_core::policy::PolicyKind;

    #[test]
    fn served_selections_match_the_reference_bit_for_bit() {
        let config = ServeConfig::new(60, 17, 400.0, 4, PolicyKind::FedL);
        let mut server = ServerState::new(config.clone(), Telemetry::in_memory().0);
        let mut transport = InProcessTransport::new(&mut server);
        let opts = LoadgenOptions { epochs: 8, ..Default::default() };
        let served = run_loadgen(&mut transport, &config, &opts).expect("loadgen should succeed");
        assert_eq!(served.selections.len(), 8, "budget 400 comfortably covers 8 epochs");
        assert!(served.selections.iter().any(|r| !r.cohort.is_empty()));
        let reference = reference_run(&config, 8);
        assert_eq!(served.selections, reference);
    }

    #[test]
    fn baseline_policies_also_match() {
        for policy in [PolicyKind::FedAvg, PolicyKind::PowD] {
            let config = ServeConfig::new(30, 5, 300.0, 3, policy);
            let mut server = ServerState::new(config.clone(), Telemetry::disabled());
            let mut transport = InProcessTransport::new(&mut server);
            let opts = LoadgenOptions { epochs: 5, ..Default::default() };
            let served = run_loadgen(&mut transport, &config, &opts).unwrap();
            assert_eq!(served.selections, reference_run(&config, 5), "{policy:?}");
        }
    }

    #[test]
    fn synth_feedback_is_deterministic() {
        let config = ServeConfig::new(20, 3, 100.0, 2, PolicyKind::FedL);
        let channel = ChannelModel::default();
        let latency = config.latency_model();
        let cols = ClientColumns::build(&config.env, &channel);
        let cohort = vec![1, 5, 9];
        let a = synth_train_result(&cols, &config, &channel, &latency, 2, &cohort, 3);
        let b = synth_train_result(&cols, &config, &channel, &latency, 2, &cohort, 3);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.eta_hats, b.eta_hats);
        assert_eq!(a.per_client_iter_latency, b.per_client_iter_latency);
    }
}
