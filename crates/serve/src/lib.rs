//! Long-running federation service for the FedL reproduction
//! (DESIGN.md row **S15**, docs/SERVE.md).
//!
//! Everything else in the workspace is a batch CLI: the budget-
//! constrained UCB selection runs inside `ExperimentRunner` over a
//! pre-built scenario. This crate turns the coordinator into a
//! persistent server driven by external events — the cloud-side
//! coordinator fronting edge populations:
//!
//! * [`proto`] — the message schema ([`Message`]) and typed failure
//!   taxonomy ([`ProtocolError`]), serialized with `fedl-json` inside
//!   the checksummed `fedl-store` envelope so damaged frames degrade
//!   to errors, never panics.
//! * [`transport`] — length-prefixed framing over TCP, an in-memory
//!   duplex pair, and a lock-step in-process transport.
//! * [`server`] — [`ServerState`], the single-threaded event loop that
//!   owns the policy + ledger + registry, selects cohorts from the
//!   columnar population, and checkpoints via the S12 envelope
//!   machinery for bit-identical restarts.
//! * [`loadgen`] — the seeded replay client ([`run_loadgen`]) and the
//!   in-process reference ([`reference_run`]) every served run must
//!   match bit-for-bit.
//! * [`cli`] — the `experiments serve` / `experiments loadgen`
//!   subcommands.
//!
//! ```
//! use fedl_core::policy::PolicyKind;
//! use fedl_serve::{
//!     run_loadgen, InProcessTransport, LoadgenOptions, ServeConfig, ServerState,
//! };
//! use fedl_telemetry::Telemetry;
//!
//! let config = ServeConfig::new(30, 7, 200.0, 3, PolicyKind::FedL);
//! let mut server = ServerState::new(config.clone(), Telemetry::disabled());
//! let mut conn = InProcessTransport::new(&mut server);
//! let report = run_loadgen(&mut conn, &config, &LoadgenOptions::default()).unwrap();
//! assert!(report.selections.iter().any(|r| !r.cohort.is_empty()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;
pub mod loadgen;
pub mod proto;
pub mod server;
pub mod transport;

pub use loadgen::{
    combine_feedback, reference_run, run_loadgen, synth_learning_signals, synth_train_result,
    LoadgenOptions, LoadgenReport, SelectionRecord,
};
pub use proto::{
    decode_frame, decode_frame_traced, encode_frame, encode_frame_traced, version_accepted,
    Message, ProtocolError, Trace, FRAME_KIND, MAX_FRAME_BYTES, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
pub use server::{
    sanitize_decision, select_for_epoch, serve_connection, Control, ServeConfig, ServeError,
    ServeExit, ServerState, SERVE_CHECKPOINT_KIND, SERVE_SNAPSHOT_SCHEMA_VERSION,
};
pub use transport::{
    read_frame, write_frame, DuplexTransport, FrameTransport, InProcessTransport, TcpTransport,
};
