//! Typed failures of the on-disk store, following the
//! `SimError`/`ScenarioError` convention: every config- or
//! disk-reachable failure is a value the caller can match on, and the
//! message alone identifies the file and the problem.

use std::fmt;

/// Why a snapshot or cache entry could not be read or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// File the operation targeted.
        path: String,
        /// The `std::io` error message.
        message: String,
    },
    /// The file ends before the payload (e.g. a crash mid-write or a
    /// partial copy).
    Truncated {
        /// File that was cut short.
        path: String,
    },
    /// The file is not a well-formed store envelope (wrong magic,
    /// mangled header, or unparseable payload).
    Corrupt {
        /// File that failed to parse.
        path: String,
        /// What exactly was wrong.
        reason: String,
    },
    /// The payload bytes do not hash to the checksum in the header.
    ChecksumMismatch {
        /// File whose payload was altered.
        path: String,
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload as found on disk.
        actual: u64,
    },
    /// The envelope was written by an incompatible format version.
    Version {
        /// File with the foreign version.
        path: String,
        /// Version found in the header.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The envelope parsed but its payload does not match the expected
    /// schema (missing or mistyped fields).
    Schema {
        /// File with the schema problem.
        path: String,
        /// The decode error.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "store I/O error on {path}: {message}"),
            StoreError::Truncated { path } => {
                write!(f, "store file {path} is truncated (header without payload)")
            }
            StoreError::Corrupt { path, reason } => {
                write!(f, "store file {path} is corrupt: {reason}")
            }
            StoreError::ChecksumMismatch { path, expected, actual } => write!(
                f,
                "store file {path} failed its checksum: header says {expected:016x}, \
                 payload hashes to {actual:016x}"
            ),
            StoreError::Version { path, found, supported } => write!(
                f,
                "store file {path} uses format v{found}; this build supports v{supported}"
            ),
            StoreError::Schema { path, reason } => {
                write!(f, "store file {path} does not match the expected schema: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// Wraps an I/O failure with the file it targeted.
    pub fn io(path: &std::path::Path, err: &std::io::Error) -> Self {
        StoreError::Io { path: path.display().to_string(), message: err.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_identify_file_and_cause() {
        let e = StoreError::ChecksumMismatch {
            path: "x/snap.fedlstore".into(),
            expected: 0xABCD,
            actual: 0x1234,
        };
        let msg = e.to_string();
        assert!(msg.contains("x/snap.fedlstore"));
        assert!(msg.contains("000000000000abcd"));
        assert!(msg.contains("0000000000001234"));
        let t = StoreError::Truncated { path: "y".into() }.to_string();
        assert!(t.contains("truncated"));
        let v = StoreError::Version { path: "z".into(), found: 9, supported: 1 }.to_string();
        assert!(v.contains("v9") && v.contains("v1"));
    }
}
