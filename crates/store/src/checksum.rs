//! Dependency-free content hashing: FNV-1a/64 for envelope checksums
//! and a doubled 128-bit variant for cache addressing.
//!
//! FNV-1a is not cryptographic — the store defends against *accidents*
//! (truncation, bit rot, concurrent half-writes), not adversaries. For
//! cache keys the two independent 64-bit passes make accidental
//! collisions across a few thousand experiment configs negligible, and
//! [`crate::cache::ResultCache`] additionally stores the full canonical
//! key text so even a collision degrades to a cache miss, never a wrong
//! result.

const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const PRIME: u64 = 0x100_0000_01B3;

/// FNV-1a/64 of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_seeded(OFFSET, bytes)
}

fn fnv1a64_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = seed;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// A 128-bit content address as 32 lowercase hex digits: the standard
/// FNV-1a/64 pass concatenated with a second pass from a perturbed
/// offset basis (equivalent to hashing a one-byte domain prefix).
pub fn content_address(bytes: &[u8]) -> String {
    let first = fnv1a64_seeded(OFFSET, bytes);
    let second = fnv1a64_seeded(OFFSET.wrapping_mul(PRIME) ^ 0xA5, bytes);
    format!("{first:016x}{second:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a/64 test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn single_bit_changes_the_hash() {
        assert_ne!(fnv1a64(b"epoch=12"), fnv1a64(b"epoch=13"));
    }

    #[test]
    fn content_address_is_stable_and_input_sensitive() {
        let a = content_address(b"scenario-a");
        assert_eq!(a, content_address(b"scenario-a"));
        assert_eq!(a.len(), 32);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, content_address(b"scenario-b"));
        // The two halves are independent passes, not copies.
        assert_ne!(a[..16], a[16..]);
    }
}
