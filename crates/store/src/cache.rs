//! Content-addressed result cache.
//!
//! Entries are keyed by the [`crate::checksum::content_address`] of a
//! *canonical key text* the caller supplies (for the bench harness:
//! the canonical `ScenarioConfig` JSON + policy label + schema
//! version). Each entry is a [`crate::envelope`] file that stores both
//! the full key text and the cached payload, so a hash collision is
//! detected by comparison and degrades to a miss — the cache can return
//! a wrong answer only if two different key texts are byte-identical.

use std::fs;
use std::path::{Path, PathBuf};

use fedl_json::{obj, Value};

use crate::envelope::{read_envelope, write_envelope};
use crate::error::StoreError;

/// Envelope kind tag for cache entries.
const ENTRY_KIND: &str = "cache-entry";

/// A directory of content-addressed cached results.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, &e))?;
        Ok(Self { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content address a key text maps to (the entry's file stem).
    pub fn address(key_text: &str) -> String {
        crate::checksum::content_address(key_text.as_bytes())
    }

    fn entry_path(&self, key_text: &str) -> PathBuf {
        self.dir.join(format!("{}.fedlstore", Self::address(key_text)))
    }

    /// Looks up `key_text`. Returns the cached payload, or `None` when
    /// the entry is absent or belongs to a colliding key. Corrupt,
    /// truncated, or incompatible entries are typed errors so the
    /// caller can report them and fall back to a fresh run.
    pub fn get(&self, key_text: &str) -> Result<Option<Value>, StoreError> {
        let path = self.entry_path(key_text);
        let envelope = match read_envelope(&path, ENTRY_KIND) {
            Ok(v) => v,
            Err(StoreError::Io { .. }) if !path.exists() => return Ok(None),
            Err(e) => return Err(e),
        };
        let stored_key = envelope.get("key").and_then(Value::as_str);
        if stored_key != Some(key_text) {
            // Either a 128-bit collision or an entry written under a
            // different canonicalization: both are misses.
            return Ok(None);
        }
        match envelope.get("payload") {
            Some(payload) => Ok(Some(payload.clone())),
            None => Err(StoreError::Schema {
                path: path.display().to_string(),
                reason: "cache entry has no payload field".into(),
            }),
        }
    }

    /// Stores `payload` under `key_text`, atomically replacing any
    /// previous entry (including a corrupt one).
    pub fn put(&self, key_text: &str, payload: &Value) -> Result<(), StoreError> {
        let entry = obj(vec![("key", Value::from(key_text)), ("payload", payload.clone())]);
        write_envelope(&self.entry_path(key_text), ENTRY_KIND, &entry)
    }

    /// Number of entries currently on disk (diagnostic; counts files
    /// with the store extension).
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|ext| ext == "fedlstore"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// `true` when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(name: &str) -> ResultCache {
        let dir = std::env::temp_dir().join("fedl_store_cache_tests").join(name);
        fs::remove_dir_all(&dir).ok();
        ResultCache::open(dir).unwrap()
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let c = cache("roundtrip");
        assert!(c.get("key-a").unwrap().is_none());
        assert!(c.is_empty());
        let payload = obj(vec![("accuracy", Value::Float(0.75))]);
        c.put("key-a", &payload).unwrap();
        let hit = c.get("key-a").unwrap().expect("entry just written");
        assert_eq!(hit.get("accuracy").unwrap().as_f64(), Some(0.75));
        assert_eq!(c.len(), 1);
        // A different key text misses even though the cache is warm.
        assert!(c.get("key-b").unwrap().is_none());
    }

    #[test]
    fn overwrite_replaces_entry() {
        let c = cache("overwrite");
        c.put("k", &Value::Int(1)).unwrap();
        c.put("k", &Value::Int(2)).unwrap();
        assert_eq!(c.get("k").unwrap().unwrap().as_i64(), Some(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn corrupt_entry_is_a_typed_error_and_put_repairs_it() {
        let c = cache("corrupt");
        c.put("k", &Value::Int(5)).unwrap();
        let path = c.entry_path("k");
        // Truncate to the header: typed error, not a panic.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.find('\n').unwrap() + 1]).unwrap();
        assert!(matches!(c.get("k"), Err(StoreError::Truncated { .. })));
        // Re-putting atomically replaces the damaged file.
        c.put("k", &Value::Int(6)).unwrap();
        assert_eq!(c.get("k").unwrap().unwrap().as_i64(), Some(6));
    }

    #[test]
    fn colliding_address_with_different_key_is_a_miss() {
        let c = cache("collision");
        c.put("k-one", &Value::Int(1)).unwrap();
        // Force a same-address entry for a different key text by
        // writing the envelope directly at k-two's would-be path with
        // k-one's... simpler: overwrite k-one's file with an entry
        // whose stored key differs from what we will ask for.
        let entry = obj(vec![("key", Value::from("something-else")), ("payload", Value::Int(9))]);
        write_envelope(&c.entry_path("k-one"), ENTRY_KIND, &entry).unwrap();
        assert!(c.get("k-one").unwrap().is_none(), "key mismatch must read as a miss");
    }

    #[test]
    fn addresses_are_hex_and_key_sensitive() {
        let a = ResultCache::address("alpha");
        let b = ResultCache::address("beta");
        assert_ne!(a, b);
        assert_eq!(a.len(), 32);
    }
}
