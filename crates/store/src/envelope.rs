//! The versioned, checksummed file envelope every store artifact uses.
//!
//! Layout (text, two sections):
//!
//! ```text
//! fedl-store v1 kind=<kind> crc=<16 hex digits>\n
//! <payload: one compact JSON document>
//! ```
//!
//! The first line is the header; everything after the first newline is
//! the payload. The checksum is FNV-1a/64 over the raw payload bytes as
//! stored, so verification never depends on JSON canonicalization.
//! Writes go through a temp file + rename so a crash mid-write leaves
//! either the old file or no file — never a half-written envelope.

use std::fs;
use std::path::Path;

use fedl_json::Value;

use crate::checksum::fnv1a64;
use crate::error::StoreError;

/// The envelope format version this build reads and writes. Bump on any
/// incompatible header or payload-layout change; readers reject foreign
/// versions with [`StoreError::Version`].
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &str = "fedl-store";

/// Serializes `payload` into the envelope text — header line plus
/// compact JSON body — without touching the filesystem. This is the
/// unit `fedl-serve` frames over the wire; [`write_envelope`] is the
/// same text landed atomically in a file.
pub fn encode_envelope(kind: &str, payload: &Value) -> String {
    assert!(
        !kind.is_empty() && kind.chars().all(|c| c.is_ascii_graphic() && c != '='),
        "envelope kind must be non-empty printable ASCII without '=': {kind:?}"
    );
    let body = payload.to_json();
    format!("{MAGIC} v{FORMAT_VERSION} kind={kind} crc={:016x}\n{body}", fnv1a64(body.as_bytes()))
}

/// Verifies and parses envelope text produced by [`encode_envelope`].
/// `source` labels the origin in error values — a file path for stored
/// envelopes, a peer address or `"frame"` for wire frames. The header's
/// magic, version, `kind`, and checksum are all checked before the
/// payload is parsed; every failure is a typed [`StoreError`], never a
/// panic.
pub fn decode_envelope(text: &str, kind: &str, source: &str) -> Result<Value, StoreError> {
    let display = source.to_string();
    let corrupt = |reason: String| StoreError::Corrupt { path: display.clone(), reason };
    let Some((header, body)) = text.split_once('\n') else {
        // No newline: either an empty/partial envelope or something that
        // was never an envelope.
        if text.starts_with(MAGIC) || text.is_empty() || MAGIC.starts_with(text) {
            return Err(StoreError::Truncated { path: display });
        }
        return Err(corrupt("missing envelope header".into()));
    };
    let fields: Vec<&str> = header.split(' ').collect();
    if fields.len() != 4 || fields[0] != MAGIC {
        return Err(corrupt(format!("bad header {header:?}")));
    }
    let version: u32 = fields[1]
        .strip_prefix('v')
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| corrupt(format!("bad version field {:?}", fields[1])))?;
    if version != FORMAT_VERSION {
        return Err(StoreError::Version {
            path: display,
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let found_kind = fields[2]
        .strip_prefix("kind=")
        .ok_or_else(|| corrupt(format!("bad kind field {:?}", fields[2])))?;
    if found_kind != kind {
        return Err(corrupt(format!("expected kind {kind:?}, found {found_kind:?}")));
    }
    let expected = fields[3]
        .strip_prefix("crc=")
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| corrupt(format!("bad checksum field {:?}", fields[3])))?;
    if body.is_empty() {
        return Err(StoreError::Truncated { path: display });
    }
    let actual = fnv1a64(body.as_bytes());
    if actual != expected {
        return Err(StoreError::ChecksumMismatch { path: display, expected, actual });
    }
    Value::parse(body).map_err(|e| StoreError::Schema { path: display, reason: e.to_string() })
}

/// Writes `text` to `path` atomically: parent directories are created,
/// the bytes land in a sibling temp file, and a `rename` publishes them.
/// A crash mid-write leaves either the old file or no file — readers can
/// never observe a partially written `path`. This is the primitive under
/// [`write_envelope`], exported for small non-envelope artifacts that
/// need the same guarantee (e.g. `experiments serve --port-file`).
pub fn write_atomic(path: &Path, text: &str) -> Result<(), StoreError> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, &e))?;
        }
    }
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, text).map_err(|e| StoreError::io(&tmp, &e))?;
    fs::rename(&tmp, path).map_err(|e| StoreError::io(path, &e))
}

/// Serializes `payload` under a `kind`-tagged, checksummed header and
/// writes it atomically (temp file + rename) to `path`.
pub fn write_envelope(path: &Path, kind: &str, payload: &Value) -> Result<(), StoreError> {
    write_atomic(path, &encode_envelope(kind, payload))
}

/// Reads, verifies, and parses an envelope written by
/// [`write_envelope`]. The header's magic, version, `kind`, and
/// checksum are all checked before the payload is parsed.
pub fn read_envelope(path: &Path, kind: &str) -> Result<Value, StoreError> {
    let text = fs::read_to_string(path).map_err(|e| StoreError::io(path, &e))?;
    decode_envelope(&text, kind, &path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedl_json::obj;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fedl_store_envelope_tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn payload() -> Value {
        obj(vec![
            ("epoch", Value::Int(7)),
            ("spent", Value::Float(12.5)),
            ("name", Value::from("snapshot")),
        ])
    }

    #[test]
    fn write_atomic_replaces_contents_and_leaves_no_temp() {
        let path = tmp("atomic.txt");
        write_atomic(&path, "first\n").unwrap();
        write_atomic(&path, "second\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second\n");
        assert!(!path.with_extension("tmp").exists());
    }

    #[test]
    fn round_trips_payload() {
        let path = tmp("roundtrip.fedlstore");
        write_envelope(&path, "test", &payload()).unwrap();
        let back = read_envelope(&path, "test").unwrap();
        assert_eq!(back.get("epoch").unwrap().as_i64(), Some(7));
        assert_eq!(back.get("spent").unwrap().as_f64(), Some(12.5));
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let path = tmp("truncated.fedlstore");
        write_envelope(&path, "test", &payload()).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let header_only = &text[..text.find('\n').unwrap() + 1];
        fs::write(&path, header_only).unwrap();
        match read_envelope(&path, "test") {
            Err(StoreError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
        // A file cut inside the header (no newline at all) is also
        // truncation, not garbage.
        fs::write(&path, "fedl-store v1").unwrap();
        assert!(matches!(read_envelope(&path, "test"), Err(StoreError::Truncated { .. })));
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let path = tmp("bitflip.fedlstore");
        write_envelope(&path, "test", &payload()).unwrap();
        let mut text = fs::read_to_string(&path).unwrap();
        // Corrupt the payload (change 7 -> 8) without touching the header.
        let body_start = text.find('\n').unwrap() + 1;
        let idx = body_start + text[body_start..].find('7').unwrap();
        text.replace_range(idx..idx + 1, "8");
        fs::write(&path, text).unwrap();
        match read_envelope(&path, "test") {
            Err(StoreError::ChecksumMismatch { expected, actual, .. }) => {
                assert_ne!(expected, actual)
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn foreign_version_and_kind_rejected() {
        let path = tmp("version.fedlstore");
        write_envelope(&path, "test", &payload()).unwrap();
        let text = fs::read_to_string(&path).unwrap().replacen("v1", "v99", 1);
        fs::write(&path, text).unwrap();
        match read_envelope(&path, "test") {
            Err(StoreError::Version { found: 99, supported: FORMAT_VERSION, .. }) => {}
            other => panic!("expected Version, got {other:?}"),
        }
        write_envelope(&path, "test", &payload()).unwrap();
        assert!(matches!(read_envelope(&path, "other-kind"), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn non_envelope_file_is_corrupt_and_missing_file_is_io() {
        let path = tmp("garbage.fedlstore");
        fs::write(&path, "{\"just\":\"json\"}\nmore").unwrap();
        assert!(matches!(read_envelope(&path, "test"), Err(StoreError::Corrupt { .. })));
        let missing = tmp("never-written.fedlstore");
        fs::remove_file(&missing).ok();
        assert!(matches!(read_envelope(&missing, "test"), Err(StoreError::Io { .. })));
    }
}
