//! Durable run state for the FedL reproduction (DESIGN.md row **S12**).
//!
//! Two layers, both built on the same file envelope:
//!
//! * [`envelope`] — a versioned, checksummed container for one JSON
//!   payload. `fedl-core` serializes mid-run experiment snapshots into
//!   it (see `ExperimentRunner::checkpoint_every` / `resume_from` and
//!   `docs/CHECKPOINT.md`), giving deterministic interrupt/resume: a
//!   resumed run produces a `RunOutcome` identical to the uninterrupted
//!   one.
//! * [`cache`] — a content-addressed result cache keyed by a canonical
//!   key text (scenario config + policy + schema version). The bench
//!   harness consults it so re-invoking `experiments` skips
//!   already-completed figure cells.
//!
//! Failure behavior is the workspace's typed-error convention
//! ([`StoreError`]): truncation, checksum mismatches, and foreign
//! format versions are values, never panics, so callers can fall back
//! to a fresh run.
//!
//! The crate is deliberately minimal: `std` + `fedl-json` only, no
//! knowledge of scenarios or policies — those serialize themselves and
//! hand this crate a [`fedl_json::Value`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod checksum;
pub mod envelope;
pub mod error;

pub use cache::ResultCache;
pub use checksum::{content_address, fnv1a64};
pub use envelope::{
    decode_envelope, encode_envelope, read_envelope, write_atomic, write_envelope, FORMAT_VERSION,
};
pub use error::StoreError;
