//! Zero-steady-state-allocation regression test for the Dykstra
//! projection — the inner loop of every PGD descent step in the FedL
//! score update. After the thread-local scratch is warmed by a first
//! projection, repeated projections (and therefore the entire PGD
//! iteration loop, which allocates nothing else per iteration) must not
//! touch the heap.
//!
//! Kept to a single `#[test]` so no sibling test can allocate
//! concurrently while the measured region runs.

use fedl_linalg::alloc_counter::CountingAllocator;
use fedl_solver::{BoxSet, DykstraIntersection, Halfspace, Project};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Asserts that some execution of `run` allocates nothing. The libtest
/// harness's main thread can allocate concurrently with the measured
/// window (event plumbing), so a dirty window is retried — a hot loop
/// that genuinely allocates per call fails every attempt.
fn assert_allocation_free(what: &str, mut run: impl FnMut()) {
    for attempt in 0..5 {
        let allocs = ALLOC.allocations();
        let bytes = ALLOC.bytes();
        run();
        if ALLOC.allocations() == allocs && ALLOC.bytes() == bytes {
            return;
        }
        eprintln!("{what}: allocation in measured window (attempt {attempt}); retrying");
    }
    panic!("{what} allocated in every measured window");
}

#[test]
fn dykstra_projection_is_allocation_free_once_warm() {
    fedl_linalg::par::force_max_threads(1);
    let n = 64;
    let proj = DykstraIntersection::new(vec![
        Box::new(BoxSet::unit(n)),
        Box::new(Halfspace::new(vec![1.0; n], 8.0)),
    ]);
    let mut v = vec![0.0f64; n];

    // Warm-up sizes the thread-local correction buffers.
    for (i, x) in v.iter_mut().enumerate() {
        *x = (i as f64 / 7.0).sin();
    }
    proj.project(&mut v);

    assert_allocation_free("Dykstra projection", || {
        for round in 0..10u32 {
            for (i, x) in v.iter_mut().enumerate() {
                *x = ((i as u32 + round) as f64 / 5.0).cos();
            }
            proj.project(&mut v);
        }
    });
    // The projection still lands in the feasible set.
    assert!(v.iter().all(|&x| (-1e-9..=1.0 + 1e-9).contains(&x)));
    assert!(v.iter().sum::<f64>() <= 8.0 + 1e-6);
}
