//! Property-based tests for the projection toolkit: the metric identities
//! every Euclidean projection must satisfy, plus feasibility of composed
//! sets under arbitrary inputs.

use fedl_solver::{BoxHalfspace, BoxSet, DykstraIntersection, Halfspace, Project};
use proptest::prelude::*;

fn vec3() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-20.0f64..20.0, 3)
}

fn fedl_set() -> DykstraIntersection {
    DykstraIntersection::new(vec![
        Box::new(BoxSet::unit(3)),
        Box::new(Halfspace::at_least(vec![1.0, 1.0, 1.0], 1.0)),
        Box::new(Halfspace::new(vec![2.0, 1.0, 0.5], 3.0)),
    ])
}

proptest! {
    #[test]
    fn box_projection_idempotent_and_nonexpansive(a in vec3(), b in vec3()) {
        let set = BoxSet::unit(3);
        let mut pa = a.clone();
        let mut pb = b.clone();
        set.project(&mut pa);
        set.project(&mut pb);
        // Idempotent.
        let mut ppa = pa.clone();
        set.project(&mut ppa);
        prop_assert_eq!(&pa, &ppa);
        // Nonexpansive: ||P(a)-P(b)|| <= ||a-b||.
        let d_proj = fedl_linalg::dvec::dist(&pa, &pb);
        let d_orig = fedl_linalg::dvec::dist(&a, &b);
        prop_assert!(d_proj <= d_orig + 1e-12);
    }

    #[test]
    fn halfspace_projection_idempotent_and_nonexpansive(a in vec3(), b in vec3()) {
        let set = Halfspace::new(vec![1.0, -2.0, 0.5], 1.0);
        let mut pa = a.clone();
        let mut pb = b.clone();
        set.project(&mut pa);
        set.project(&mut pb);
        prop_assert!(set.contains(&pa, 1e-9));
        let mut ppa = pa.clone();
        set.project(&mut ppa);
        prop_assert!(fedl_linalg::dvec::dist(&pa, &ppa) < 1e-12);
        prop_assert!(
            fedl_linalg::dvec::dist(&pa, &pb) <= fedl_linalg::dvec::dist(&a, &b) + 1e-12
        );
    }

    #[test]
    fn box_halfspace_is_optimal_vs_dykstra(v in vec3()) {
        // The closed-form bisection projection and the iterative Dykstra
        // projection must agree on the same two-set geometry.
        let exact = BoxHalfspace::new(
            BoxSet::unit(3),
            Halfspace::new(vec![1.0, 1.0, 1.0], 1.5),
        );
        let dyk = DykstraIntersection::new(vec![
            Box::new(BoxSet::unit(3)),
            Box::new(Halfspace::new(vec![1.0, 1.0, 1.0], 1.5)),
        ]);
        let mut a = v.clone();
        let mut b = v.clone();
        exact.project(&mut a);
        dyk.project(&mut b);
        prop_assert!(exact.contains(&a, 1e-7), "exact infeasible {:?}", a);
        prop_assert!(dyk.contains(&b, 1e-6), "dykstra infeasible {:?}", b);
        prop_assert!(
            fedl_linalg::dvec::dist(&a, &b) < 1e-4,
            "exact {:?} vs dykstra {:?}", a, b
        );
    }

    #[test]
    fn composed_fedl_set_always_feasible(v in vec3()) {
        let set = fedl_set();
        let mut p = v.clone();
        set.project(&mut p);
        prop_assert!(set.contains(&p, 1e-6), "infeasible projection {:?} of {:?}", p, v);
    }

    #[test]
    fn projection_no_worse_than_any_feasible_witness(v in vec3(), w in vec3()) {
        // For the *exact* two-set projection: distance(v, P(v)) must be
        // <= distance(v, z) for every feasible z; we use a projected
        // witness z = P(w) as the feasible comparator.
        let set = BoxHalfspace::new(
            BoxSet::unit(3),
            Halfspace::new(vec![1.0, 2.0, 3.0], 2.0),
        );
        let mut pv = v.clone();
        set.project(&mut pv);
        let mut z = w.clone();
        set.project(&mut z);
        let d_opt = fedl_linalg::dvec::dist(&v, &pv);
        let d_wit = fedl_linalg::dvec::dist(&v, &z);
        prop_assert!(d_opt <= d_wit + 1e-6, "opt {} vs witness {}", d_opt, d_wit);
    }
}
