//! Projected gradient descent with Armijo backtracking.
//!
//! The driver `fedl-core` uses once per epoch to solve the modified
//! descent step (paper eq. (8)). The objective there is the linearized
//! Lagrangian plus a `‖Φ − Φₜ‖²/(2β)` proximal term, i.e. strongly convex
//! with an easily bounded curvature, so plain PGD with backtracking
//! converges linearly and a few hundred iterations reach optimizer noise
//! well below the rounding granularity that follows.

use crate::projection::Project;

/// Options controlling [`minimize`].
#[derive(Debug, Clone)]
pub struct PgdOptions {
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Converged when the iterate moves less than `tol` (Euclidean) in one
    /// step.
    pub tol: f64,
    /// Initial step size tried each iteration.
    pub step0: f64,
    /// Multiplicative backtracking factor in `(0, 1)`.
    pub shrink: f64,
    /// Armijo sufficient-decrease coefficient in `(0, 1)`.
    pub armijo: f64,
    /// Maximum backtracking halvings per iteration.
    pub max_backtracks: usize,
}

impl Default for PgdOptions {
    fn default() -> Self {
        Self {
            max_iters: 500,
            tol: 1e-9,
            step0: 1.0,
            shrink: 0.5,
            armijo: 1e-4,
            max_backtracks: 40,
        }
    }
}

/// Result of a [`minimize`] call.
#[derive(Debug, Clone)]
pub struct PgdResult {
    /// Final (feasible) iterate.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Iterations actually performed.
    pub iters: usize,
    /// Whether the movement tolerance was reached before the cap.
    pub converged: bool,
}

/// Minimizes `f` over the convex set `set` starting from `x0`.
///
/// `grad(x, out)` must write `∇f(x)` into `out`. `x0` is projected onto
/// the set before the first iteration, so any starting point is accepted.
///
/// Each iteration takes a gradient step, projects, and backtracks on the
/// step length until the Armijo condition
/// `f(x⁺) ≤ f(x) − c·‖x⁺ − x‖²/η` holds (the projected-gradient form of
/// sufficient decrease). If backtracking exhausts its budget the current
/// point is already numerically stationary and the loop stops.
pub fn minimize<F, G>(f: F, grad: G, set: &dyn Project, x0: &[f64], opts: &PgdOptions) -> PgdResult
where
    F: Fn(&[f64]) -> f64,
    G: Fn(&[f64], &mut [f64]),
{
    assert_eq!(x0.len(), set.dim(), "x0 dimension mismatch with feasible set");
    assert!(opts.step0 > 0.0 && opts.shrink > 0.0 && opts.shrink < 1.0, "bad PGD options");

    let n = x0.len();
    let mut x = x0.to_vec();
    set.project(&mut x);
    let mut fx = f(&x);
    let mut g = vec![0.0f64; n];
    let mut cand = vec![0.0f64; n];

    let mut iters = 0;
    let mut converged = false;
    while iters < opts.max_iters {
        iters += 1;
        grad(&x, &mut g);
        debug_assert!(fedl_linalg::dvec::all_finite(&g), "non-finite gradient");

        let mut eta = opts.step0;
        let mut accepted = false;
        for _ in 0..=opts.max_backtracks {
            cand.copy_from_slice(&x);
            fedl_linalg::dvec::axpy(&mut cand, -eta, &g);
            set.project(&mut cand);
            let moved_sq = fedl_linalg::dvec::dist_sq(&cand, &x);
            if moved_sq <= opts.tol * opts.tol {
                // Stationary: projected step doesn't move.
                converged = true;
                accepted = false;
                break;
            }
            let f_cand = f(&cand);
            if f_cand <= fx - opts.armijo * moved_sq / eta {
                x.copy_from_slice(&cand);
                fx = f_cand;
                accepted = true;
                break;
            }
            eta *= opts.shrink;
        }
        if converged {
            break;
        }
        if !accepted {
            // Backtracking exhausted without decrease: treat as converged
            // to numerical precision.
            converged = true;
            break;
        }
    }

    PgdResult { x, objective: fx, iters, converged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::{BoxSet, Halfspace, Project};
    use fedl_linalg::approx_eq_f64;

    #[test]
    fn unconstrained_quadratic_reaches_center() {
        // Large box ≈ unconstrained.
        let set = BoxSet::new(vec![-100.0; 3], vec![100.0; 3]);
        let center = [1.0, -2.0, 3.0];
        let f = |x: &[f64]| x.iter().zip(&center).map(|(a, b)| (a - b) * (a - b)).sum::<f64>();
        let g = |x: &[f64], out: &mut [f64]| {
            for i in 0..3 {
                out[i] = 2.0 * (x[i] - center[i]);
            }
        };
        let res = minimize(f, g, &set, &[0.0; 3], &PgdOptions::default());
        assert!(res.converged);
        for (xi, ci) in res.x.iter().zip(&center) {
            assert!(approx_eq_f64(*xi, *ci, 1e-6), "{:?}", res.x);
        }
        assert!(res.objective < 1e-10);
    }

    #[test]
    fn active_box_constraint_binds() {
        let set = BoxSet::unit(2);
        // Minimize distance to (2, 0.5): optimum is (1, 0.5).
        let f = |x: &[f64]| (x[0] - 2.0f64).powi(2) + (x[1] - 0.5f64).powi(2);
        let g = |x: &[f64], out: &mut [f64]| {
            out[0] = 2.0 * (x[0] - 2.0);
            out[1] = 2.0 * (x[1] - 0.5);
        };
        let res = minimize(f, g, &set, &[0.0, 0.0], &PgdOptions::default());
        assert!(approx_eq_f64(res.x[0], 1.0, 1e-6));
        assert!(approx_eq_f64(res.x[1], 0.5, 1e-6));
    }

    #[test]
    fn halfspace_constraint_binds() {
        // min x² + y² s.t. x + y >= 1 -> (0.5, 0.5).
        let set = Halfspace::at_least(vec![1.0, 1.0], 1.0);
        let f = |x: &[f64]| x[0] * x[0] + x[1] * x[1];
        let g = |x: &[f64], out: &mut [f64]| {
            out[0] = 2.0 * x[0];
            out[1] = 2.0 * x[1];
        };
        let res = minimize(f, g, &set, &[3.0, -1.0], &PgdOptions::default());
        assert!(approx_eq_f64(res.x[0], 0.5, 1e-6), "{:?}", res.x);
        assert!(approx_eq_f64(res.x[1], 0.5, 1e-6), "{:?}", res.x);
    }

    #[test]
    fn respects_iteration_cap() {
        let set = BoxSet::new(vec![-1e9], vec![1e9]);
        let f = |x: &[f64]| x[0] * x[0];
        let g = |x: &[f64], out: &mut [f64]| out[0] = 2.0 * x[0];
        let opts = PgdOptions { max_iters: 3, step0: 1e-6, ..Default::default() };
        let res = minimize(f, g, &set, &[1000.0], &opts);
        assert_eq!(res.iters, 3);
        assert!(!res.converged);
    }

    #[test]
    fn infeasible_start_is_projected_first() {
        let set = BoxSet::unit(2);
        let f = |x: &[f64]| x[0] + x[1];
        let g = |_: &[f64], out: &mut [f64]| {
            out[0] = 1.0;
            out[1] = 1.0;
        };
        let res = minimize(f, g, &set, &[50.0, -50.0], &PgdOptions::default());
        assert!(set.contains(&res.x, 1e-9));
        // Linear objective over unit box minimized at origin.
        assert!(res.x[0] < 1e-6 && res.x[1] < 1e-6, "{:?}", res.x);
    }

    #[test]
    fn nonsmooth_kink_converges_to_min() {
        // f = |x - 0.3| has a kink; PGD with backtracking should still
        // stall at the kink rather than oscillate forever.
        let set = BoxSet::unit(1);
        let f = |x: &[f64]| (x[0] - 0.3f64).abs();
        let g = |x: &[f64], out: &mut [f64]| out[0] = if x[0] >= 0.3 { 1.0 } else { -1.0 };
        let res = minimize(f, g, &set, &[0.9], &PgdOptions::default());
        assert!((res.x[0] - 0.3).abs() < 1e-3, "{:?}", res.x);
    }
}
