//! Exact Euclidean projections onto the primitive convex sets that make up
//! FedL's per-epoch feasible region.

use fedl_linalg::dvec;

/// A closed convex set that supports Euclidean projection and membership
/// testing.
///
/// `project` must return the *exact* nearest point for the primitive sets
/// in this module; composite sets (see [`crate::DykstraIntersection`])
/// converge to it iteratively.
pub trait Project: Send + Sync {
    /// Projects `v` onto the set in place.
    fn project(&self, v: &mut [f64]);

    /// Returns `true` when `v` satisfies the set's constraints up to
    /// absolute tolerance `tol`.
    fn contains(&self, v: &[f64], tol: f64) -> bool;

    /// Dimension the set lives in.
    fn dim(&self) -> usize;
}

/// Axis-aligned box `{ v : lo ≤ v ≤ hi }`.
#[derive(Debug, Clone)]
pub struct BoxSet {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl BoxSet {
    /// Creates the box; panics if the bounds disagree in length or any
    /// `lo[i] > hi[i]` (an empty box is a caller bug, not a runtime state).
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "box bound length mismatch");
        for (i, (&l, &h)) in lo.iter().zip(&hi).enumerate() {
            assert!(l <= h, "empty box at coordinate {i}: lo {l} > hi {h}");
        }
        Self { lo, hi }
    }

    /// The unit box `[0, 1]^n`.
    pub fn unit(n: usize) -> Self {
        Self::new(vec![0.0; n], vec![1.0; n])
    }

    /// Lower bounds.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }
}

impl Project for BoxSet {
    fn project(&self, v: &mut [f64]) {
        dvec::clamp_box(v, &self.lo, &self.hi);
    }

    fn contains(&self, v: &[f64], tol: f64) -> bool {
        v.len() == self.lo.len()
            && v.iter()
                .zip(&self.lo)
                .zip(&self.hi)
                .all(|((&x, &l), &h)| x >= l - tol && x <= h + tol)
    }

    fn dim(&self) -> usize {
        self.lo.len()
    }
}

/// Halfspace `{ v : a·v ≤ b }`.
///
/// A `≥` constraint is expressed by negating both sides (see
/// [`Halfspace::at_least`]).
#[derive(Debug, Clone)]
pub struct Halfspace {
    a: Vec<f64>,
    b: f64,
    a_norm_sq: f64,
}

impl Halfspace {
    /// Creates `{ v : a·v ≤ b }`; panics if `a` is the zero vector (the
    /// set would be everything or nothing).
    pub fn new(a: Vec<f64>, b: f64) -> Self {
        let a_norm_sq = dvec::dot(&a, &a);
        assert!(a_norm_sq > 0.0, "halfspace normal must be non-zero");
        Self { a, b, a_norm_sq }
    }

    /// Convenience constructor for `a·v ≥ b`, stored as `(-a)·v ≤ -b`.
    pub fn at_least(a: Vec<f64>, b: f64) -> Self {
        Self::new(a.into_iter().map(|x| -x).collect(), -b)
    }

    /// Signed violation `a·v − b` (positive ⇒ outside).
    pub fn violation(&self, v: &[f64]) -> f64 {
        dvec::dot(&self.a, v) - self.b
    }
}

impl Project for Halfspace {
    fn project(&self, v: &mut [f64]) {
        let excess = self.violation(v);
        if excess > 0.0 {
            dvec::axpy(v, -excess / self.a_norm_sq, &self.a);
        }
    }

    fn contains(&self, v: &[f64], tol: f64) -> bool {
        self.violation(v) <= tol * (1.0 + self.b.abs())
    }

    fn dim(&self) -> usize {
        self.a.len()
    }
}

/// Exact projection onto `{ lo ≤ v ≤ hi } ∩ { a·v ≤ b }` via Lagrangian
/// bisection.
///
/// The KKT conditions give the projection as
/// `clamp(v − λ·a, lo, hi)` for the smallest `λ ≥ 0` that satisfies the
/// halfspace. The map `λ ↦ a·clamp(v − λ·a)` is non-increasing (each
/// coordinate contributes `−aᵢ²` where unclamped), so bisection on λ finds
/// the root to machine-level accuracy in ~60 iterations.
///
/// This is the set FedL projects onto most often (selection fractions in
/// the unit box intersected with either the participation or the budget
/// constraint), so having the *exact* two-set projection keeps Dykstra's
/// outer loop short.
#[derive(Debug, Clone)]
pub struct BoxHalfspace {
    boxset: BoxSet,
    half: Halfspace,
}

impl BoxHalfspace {
    /// Creates the intersection; panics on dimension mismatch.
    pub fn new(boxset: BoxSet, half: Halfspace) -> Self {
        assert_eq!(boxset.dim(), half.dim(), "box/halfspace dimension mismatch");
        Self { boxset, half }
    }

    fn clamped_violation(&self, v: &[f64], lambda: f64, scratch: &mut Vec<f64>) -> f64 {
        scratch.clear();
        scratch.extend_from_slice(v);
        dvec::axpy(scratch, -lambda, &self.half.a);
        self.boxset.project(scratch);
        self.half.violation(scratch)
    }
}

impl Project for BoxHalfspace {
    fn project(&self, v: &mut [f64]) {
        // Fast path: clamping alone may already satisfy the halfspace.
        let mut scratch = v.to_vec();
        self.boxset.project(&mut scratch);
        if self.half.violation(&scratch) <= 0.0 {
            v.copy_from_slice(&scratch);
            return;
        }
        // Bracket λ: violation(0) > 0; grow hi until violation(hi) <= 0.
        // If even λ → ∞ cannot satisfy it the sets are disjoint, which is a
        // caller bug (the feasible region must be non-empty); we then
        // return the closest box point at the bracket limit.
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        let mut tries = 0;
        while self.clamped_violation(v, hi, &mut scratch) > 0.0 {
            lo = hi;
            hi *= 2.0;
            tries += 1;
            if tries > 80 {
                // Disjoint (or numerically so): take the box point that
                // minimizes the halfspace violation.
                let _ = self.clamped_violation(v, hi, &mut scratch);
                v.copy_from_slice(&scratch);
                return;
            }
        }
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.clamped_violation(v, mid, &mut scratch) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let _ = self.clamped_violation(v, hi, &mut scratch);
        v.copy_from_slice(&scratch);
    }

    fn contains(&self, v: &[f64], tol: f64) -> bool {
        self.boxset.contains(v, tol) && self.half.contains(v, tol)
    }

    fn dim(&self) -> usize {
        self.boxset.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedl_linalg::approx_eq_f64;

    #[test]
    fn box_projection_clamps() {
        let b = BoxSet::unit(3);
        let mut v = vec![-0.5, 0.5, 1.5];
        b.project(&mut v);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
        assert!(b.contains(&v, 1e-12));
    }

    #[test]
    #[should_panic(expected = "empty box")]
    fn box_rejects_inverted_bounds() {
        let _ = BoxSet::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn halfspace_projection_is_orthogonal() {
        let h = Halfspace::new(vec![1.0, 1.0], 1.0);
        let mut v = vec![1.0, 1.0]; // violation = 1
        h.project(&mut v);
        // Projection of (1,1) onto x+y<=1 is (0.5, 0.5).
        assert!(approx_eq_f64(v[0], 0.5, 1e-12));
        assert!(approx_eq_f64(v[1], 0.5, 1e-12));
        assert!(h.contains(&v, 1e-9));
    }

    #[test]
    fn halfspace_noop_inside() {
        let h = Halfspace::new(vec![1.0, 0.0], 2.0);
        let mut v = vec![1.0, 7.0];
        h.project(&mut v);
        assert_eq!(v, vec![1.0, 7.0]);
    }

    #[test]
    fn at_least_flips_direction() {
        let h = Halfspace::at_least(vec![1.0, 1.0], 1.0); // x+y >= 1
        assert!(h.contains(&[0.6, 0.6], 1e-9));
        assert!(!h.contains(&[0.2, 0.2], 1e-9));
        let mut v = vec![0.0, 0.0];
        h.project(&mut v);
        assert!(approx_eq_f64(v[0] + v[1], 1.0, 1e-9));
    }

    #[test]
    fn box_halfspace_exact_on_known_case() {
        // Project (1,1) onto [0,1]^2 ∩ {x+y <= 1}: expect (0.5, 0.5).
        let set = BoxHalfspace::new(BoxSet::unit(2), Halfspace::new(vec![1.0, 1.0], 1.0));
        let mut v = vec![1.0, 1.0];
        set.project(&mut v);
        assert!(approx_eq_f64(v[0], 0.5, 1e-9), "{v:?}");
        assert!(approx_eq_f64(v[1], 0.5, 1e-9), "{v:?}");
    }

    #[test]
    fn box_halfspace_where_clamping_binds() {
        // Project (3, 0.2) onto [0,1]^2 ∩ {x+y <= 1}. Plain halfspace
        // projection would give (1.9, -0.9) -> clamping alone is wrong;
        // the true answer has x at its upper bound harmony with λ.
        let set = BoxHalfspace::new(BoxSet::unit(2), Halfspace::new(vec![1.0, 1.0], 1.0));
        let mut v = vec![3.0, 0.2];
        set.project(&mut v);
        assert!(set.contains(&v, 1e-8), "{v:?}");
        // Optimality check against a fine grid search.
        let mut best = (f64::INFINITY, vec![0.0, 0.0]);
        let n = 400;
        for i in 0..=n {
            for j in 0..=n {
                let x = i as f64 / n as f64;
                let y = j as f64 / n as f64;
                if x + y <= 1.0 + 1e-12 {
                    let d = (x - 3.0f64).powi(2) + (y - 0.2f64).powi(2);
                    if d < best.0 {
                        best = (d, vec![x, y]);
                    }
                }
            }
        }
        let d_sol = (v[0] - 3.0f64).powi(2) + (v[1] - 0.2f64).powi(2);
        assert!(d_sol <= best.0 + 1e-4, "solver {d_sol} vs grid {}", best.0);
    }

    #[test]
    fn box_halfspace_noop_when_feasible() {
        let set = BoxHalfspace::new(BoxSet::unit(2), Halfspace::new(vec![1.0, 1.0], 1.5));
        let mut v = vec![0.25, 0.5];
        set.project(&mut v);
        assert_eq!(v, vec![0.25, 0.5]);
    }

    #[test]
    fn box_halfspace_disjoint_falls_back_to_box() {
        // Box [0,1]^2 cannot satisfy x+y <= -1: expect the closest box
        // point to the halfspace (origin) rather than a panic/hang.
        let set = BoxHalfspace::new(BoxSet::unit(2), Halfspace::new(vec![1.0, 1.0], -1.0));
        let mut v = vec![0.9, 0.9];
        set.project(&mut v);
        assert!(v[0].abs() < 1e-6 && v[1].abs() < 1e-6, "{v:?}");
    }
}
