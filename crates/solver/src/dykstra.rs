//! Dykstra's alternating-projection algorithm for set intersections.
//!
//! Naive cyclic projection onto each set in turn converges to *a* point of
//! the intersection but not to the *nearest* one; Dykstra's correction
//! vectors restore optimality, which matters here because projected
//! gradient descent relies on projections being (approximately) the true
//! Euclidean projection to inherit its convergence guarantees.

use std::cell::RefCell;

use crate::projection::Project;

/// Reusable buffers for one [`DykstraIntersection::project`] call.
///
/// Projection is the inner loop of projected gradient descent — it runs
/// once per backtrack of every PGD iteration — so allocating the
/// correction vectors per call dominated the allocator profile of the
/// online decision step. Each thread keeps one of these in thread-local
/// storage instead; a warmed steady-state `project` call performs no
/// heap allocation.
#[derive(Default)]
struct DykstraScratch {
    /// One correction (increment) vector per member set.
    corrections: Vec<Vec<f64>>,
    /// Iterate at the start of the current sweep.
    prev: Vec<f64>,
    /// Iterate before the current member projection.
    before: Vec<f64>,
}

thread_local! {
    static SCRATCH: RefCell<DykstraScratch> = RefCell::new(DykstraScratch::default());
}

/// Intersection `S₁ ∩ … ∩ Sₘ` projected via Dykstra's algorithm.
pub struct DykstraIntersection {
    sets: Vec<Box<dyn Project>>,
    /// Maximum sweeps over all member sets before giving up.
    max_sweeps: usize,
    /// Terminate when one full sweep moves the iterate less than this.
    tol: f64,
}

impl DykstraIntersection {
    /// Builds the intersection from its member sets.
    ///
    /// # Panics
    /// Panics if `sets` is empty or members disagree on dimension.
    pub fn new(sets: Vec<Box<dyn Project>>) -> Self {
        assert!(!sets.is_empty(), "intersection of zero sets");
        let dim = sets[0].dim();
        for (i, s) in sets.iter().enumerate() {
            assert_eq!(s.dim(), dim, "set {i} has dimension {} != {dim}", s.dim());
        }
        Self { sets, max_sweeps: 5000, tol: 1e-10 }
    }

    /// Overrides the sweep budget (default 5000).
    pub fn with_max_sweeps(mut self, max_sweeps: usize) -> Self {
        self.max_sweeps = max_sweeps.max(1);
        self
    }

    /// Overrides the per-sweep movement tolerance (default 1e-10).
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol.max(0.0);
        self
    }

    /// Number of member sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }
}

impl DykstraIntersection {
    /// [`Project::project`] with caller-provided buffers. Numerically
    /// identical to allocating fresh zeroed buffers: every buffer is
    /// reshaped and (for the corrections) re-zeroed before use.
    fn project_with(&self, v: &mut [f64], scratch: &mut DykstraScratch) {
        let n = v.len();
        let corrections = &mut scratch.corrections;
        corrections.resize_with(self.sets.len(), Vec::new);
        for c in corrections.iter_mut() {
            c.clear();
            c.resize(n, 0.0);
        }
        let prev = &mut scratch.prev;
        prev.clear();
        prev.resize(n, 0.0);
        let before = &mut scratch.before;
        before.clear();
        before.resize(n, 0.0);
        for _ in 0..self.max_sweeps {
            prev.copy_from_slice(v);
            // Movement of the iterate alone is not a safe stopping rule:
            // Dykstra passes through transient period-1 cycles where the
            // end-of-sweep iterate is static (and may even be feasible)
            // while the correction vectors are still evolving toward the
            // optimal dual variables. True convergence is when iterate AND
            // corrections have both stopped moving.
            let mut corr_moved = 0.0f64;
            for (set, corr) in self.sets.iter().zip(corrections.iter_mut()) {
                // y = v + correction; project; new correction = y - P(y).
                for (vi, ci) in v.iter_mut().zip(corr.iter()) {
                    *vi += *ci;
                }
                before.copy_from_slice(v);
                set.project(v);
                for ((ci, &bi), &vi) in corr.iter_mut().zip(before.iter()).zip(v.iter()) {
                    let new_ci = bi - vi;
                    corr_moved += (new_ci - *ci).abs();
                    *ci = new_ci;
                }
            }
            let moved = fedl_linalg::dvec::dist(v, prev);
            if moved <= self.tol && corr_moved <= self.tol && self.contains(v, 1e-9) {
                return;
            }
        }
        // Sweep budget exhausted without a certified optimum. Fall back to
        // plain cyclic projections (POCS), which converge to *a* point of
        // the intersection — feasibility matters more to the PGD caller
        // than exact nearness at this stage.
        for _ in 0..self.max_sweeps {
            prev.copy_from_slice(v);
            for set in &self.sets {
                set.project(v);
            }
            if fedl_linalg::dvec::dist(v, prev) <= self.tol {
                break;
            }
        }
    }
}

impl Project for DykstraIntersection {
    fn project(&self, v: &mut [f64]) {
        // Borrow the thread's scratch by moving it out and back: a nested
        // projection (an intersection containing another intersection)
        // then simply starts from a fresh default instead of panicking on
        // a second borrow.
        let mut scratch = SCRATCH.with(|s| s.take());
        self.project_with(v, &mut scratch);
        SCRATCH.with(|s| *s.borrow_mut() = scratch);
    }

    fn contains(&self, v: &[f64], tol: f64) -> bool {
        self.sets.iter().all(|s| s.contains(v, tol))
    }

    fn dim(&self) -> usize {
        self.sets[0].dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::{BoxSet, Halfspace};
    use fedl_linalg::approx_eq_f64;

    fn unit_box_and_diag_cap() -> DykstraIntersection {
        DykstraIntersection::new(vec![
            Box::new(BoxSet::unit(2)),
            Box::new(Halfspace::new(vec![1.0, 1.0], 1.0)),
        ])
    }

    #[test]
    fn matches_exact_two_set_projection() {
        // Compare Dykstra against the exact BoxHalfspace projection on a
        // grid of exterior points.
        use crate::projection::BoxHalfspace;
        let dyk = unit_box_and_diag_cap();
        let exact = BoxHalfspace::new(BoxSet::unit(2), Halfspace::new(vec![1.0, 1.0], 1.0));
        for &(x, y) in &[(2.0, 2.0), (3.0, 0.2), (-1.0, 0.7), (0.9, 0.9), (1.4, -0.3)] {
            let mut a = vec![x, y];
            let mut b = vec![x, y];
            dyk.project(&mut a);
            exact.project(&mut b);
            assert!(
                approx_eq_f64(a[0], b[0], 1e-6) && approx_eq_f64(a[1], b[1], 1e-6),
                "dykstra {a:?} vs exact {b:?} for ({x},{y})"
            );
        }
    }

    #[test]
    fn interior_point_is_fixed() {
        let dyk = unit_box_and_diag_cap();
        let mut v = vec![0.2, 0.3];
        dyk.project(&mut v);
        assert!(approx_eq_f64(v[0], 0.2, 1e-9));
        assert!(approx_eq_f64(v[1], 0.3, 1e-9));
    }

    #[test]
    fn three_set_intersection_feasible() {
        // Box, sum >= 1, weighted sum <= 1.5: non-trivially coupled.
        let dyk = DykstraIntersection::new(vec![
            Box::new(BoxSet::unit(3)),
            Box::new(Halfspace::at_least(vec![1.0, 1.0, 1.0], 1.0)),
            Box::new(Halfspace::new(vec![2.0, 1.0, 0.5], 1.5)),
        ]);
        let mut v = vec![5.0, -3.0, 0.5];
        dyk.project(&mut v);
        assert!(dyk.contains(&v, 1e-6), "projected point infeasible: {v:?}");
    }

    #[test]
    fn projection_is_idempotent() {
        let dyk = unit_box_and_diag_cap();
        let mut v = vec![2.0, 1.7];
        dyk.project(&mut v);
        let first = v.clone();
        dyk.project(&mut v);
        assert!(fedl_linalg::dvec::dist(&first, &v) < 1e-8);
    }

    #[test]
    #[should_panic(expected = "intersection of zero sets")]
    fn rejects_empty_intersection() {
        let _ = DykstraIntersection::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn rejects_dimension_mismatch() {
        let _ =
            DykstraIntersection::new(vec![Box::new(BoxSet::unit(2)), Box::new(BoxSet::unit(3))]);
    }
}
