//! Projection-based convex optimization toolkit for FedL's online
//! decision step.
//!
//! The paper solves its one-shot subproblem (eq. (8)) with the
//! interior-point filter line-search solver of Wächter & Biegler \[26\].
//! That subproblem is tiny — at most `K + 1` variables (one selection
//! fraction per available client plus the iteration-control variable ρ) —
//! and its feasible region is an intersection of simple convex sets:
//!
//! * a box `x ∈ [0, 1]^K`, `ρ ∈ [1, ρ_max]`;
//! * the participation halfspace `Σ x_k ≥ n` (constraint (3b)/(6b));
//! * the budget halfspace `Σ c_k x_k ≤ C_remaining` (constraint (3a)/(6a)).
//!
//! This crate therefore replaces the interior-point dependency with a
//! from-scratch projected-gradient solver:
//!
//! * [`projection`] — exact Euclidean projections onto the primitive sets,
//!   including the box∩halfspace intersection via Lagrangian bisection;
//! * [`dykstra`] — Dykstra's alternating-projection algorithm for
//!   intersections of several sets (converges to the exact projection,
//!   unlike naive alternating projection);
//! * [`pgd`] — projected gradient descent with optional Armijo
//!   backtracking, the driver used once per epoch by `fedl-core`.
//!
//! Everything is `f64`: the decision problem is small, so precision is
//! cheap and keeps the regret accounting clean.
//!
//! System-inventory row **S6** in DESIGN.md §1.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dykstra;
pub mod pgd;
pub mod projection;

pub use dykstra::DykstraIntersection;
pub use pgd::{minimize, PgdOptions, PgdResult};
pub use projection::{BoxHalfspace, BoxSet, Halfspace, Project};

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end smoke test: minimize ||z - target||² over a FedL-shaped
    /// feasible set and check feasibility of the optimum.
    #[test]
    fn quadratic_over_fedl_shaped_set() {
        // 4 clients + rho: box [0,1]^4 x [1,8], sum(x) >= 2, cost <= 3.
        let boxset = BoxSet::new(vec![0.0, 0.0, 0.0, 0.0, 1.0], vec![1.0, 1.0, 1.0, 1.0, 8.0]);
        // sum of x over first 4 coords >= 2  <=>  -sum(x) <= -2
        let participation = Halfspace::new(vec![-1.0, -1.0, -1.0, -1.0, 0.0], -2.0);
        let costs = Halfspace::new(vec![1.0, 2.0, 0.5, 0.25, 0.0], 3.0);
        let set = DykstraIntersection::new(vec![
            Box::new(boxset),
            Box::new(participation),
            Box::new(costs),
        ]);

        let target = vec![1.0, 1.0, 1.0, 1.0, 0.0];
        let f = |z: &[f64]| fedl_linalg::dvec::dist_sq(z, &target);
        let grad = |z: &[f64], g: &mut [f64]| {
            for i in 0..z.len() {
                g[i] = 2.0 * (z[i] - target[i]);
            }
        };
        let x0 = vec![0.5, 0.5, 0.5, 0.5, 2.0];
        let res = minimize(f, grad, &set, &x0, &PgdOptions::default());
        assert!(res.converged, "PGD did not converge: {res:?}");
        assert!(set.contains(&res.x, 1e-6));
        let sum_x: f64 = res.x[..4].iter().sum();
        assert!(sum_x >= 2.0 - 1e-6);
        let cost = res.x[0] + 2.0 * res.x[1] + 0.5 * res.x[2] + 0.25 * res.x[3];
        assert!(cost <= 3.0 + 1e-6);
        assert!(res.x[4] >= 1.0 - 1e-9);
    }
}
