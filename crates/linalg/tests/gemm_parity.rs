//! Thread-count bit-parity for the blocked GEMM.
//!
//! The cache-blocked kernel partitions work by row panels; every panel is
//! computed by the same sequential micro-kernel in the same order no
//! matter which worker runs it, so the product must be byte-identical
//! for any thread count. These tests pin that contract: a future change
//! that makes the split point (and therefore the reduction order) depend
//! on thread count would show up here as a bit diff.

use fedl_linalg::rng::rng_for;
use fedl_linalg::Matrix;

/// Shapes chosen to straddle the parallel-dispatch threshold: the small
/// ones stay on the sequential path for every thread count, the large
/// ones cross `gemm_par_threshold_flops()` (default 256 Ki flops, i.e.
/// any product with `2*m*k*n >= 262144`) and exercise the panel split.
const SHAPES: [(usize, usize, usize); 6] = [
    (3, 5, 4),      // tiny, sequential everywhere
    (17, 33, 9),    // odd remainders in every blocking dimension
    (64, 64, 64),   // exactly at the MC boundary
    (96, 96, 96),   // crosses the parallel threshold
    (128, 300, 65), // wide K remainder, crosses threshold
    (257, 48, 130), // row count not a multiple of any block size
];

fn filled(rows: usize, cols: usize, salt: u64) -> Matrix {
    let mut rng = rng_for(salt, 7);
    Matrix::uniform(rows, cols, 2.0, &mut rng)
}

/// The product must be byte-identical for sequential, 2-thread, and
/// 8-thread dispatch, and identical to the public `matmul` entry point.
#[test]
fn matmul_is_bit_identical_across_thread_counts() {
    for (idx, &(m, k, n)) in SHAPES.iter().enumerate() {
        let a = filled(m, k, idx as u64);
        let b = filled(k, n, idx as u64 + 100);
        let reference = a.matmul_with_threads(&b, 1);
        for threads in [2usize, 8] {
            let got = a.matmul_with_threads(&b, threads);
            assert_eq!(reference.shape(), got.shape());
            for (i, (x, y)) in reference.as_slice().iter().zip(got.as_slice()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "shape {m}x{k}x{n}, {threads} threads, element {i}: \
                     {x:?} vs {y:?}"
                );
            }
        }
        let public = a.matmul(&b);
        assert_eq!(reference.as_slice(), public.as_slice());
    }
}

/// Repeated calls on the same inputs must reproduce the same bytes —
/// no dependence on allocator state or scratch reuse.
#[test]
fn matmul_is_deterministic_across_repeated_calls() {
    let a = filled(96, 96, 42);
    let b = filled(96, 96, 43);
    let first = a.matmul(&b);
    for _ in 0..3 {
        let again = a.matmul(&b);
        for (x, y) in first.as_slice().iter().zip(again.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    // Reuse of a caller-owned output buffer must not change the bytes
    // either, including when the buffer held stale contents.
    let mut out = Matrix::from_vec(2, 2, vec![9.0; 4]);
    a.matmul_into(&b, &mut out);
    assert_eq!(first.as_slice(), out.as_slice());
}
