//! `FEDL_GEMM_PAR_FLOPS` override test.
//!
//! Lives in its own integration-test binary because the threshold is
//! cached in a process-wide `OnceLock` on first use: the variable must
//! be set before *any* GEMM runs in the process, which an in-crate unit
//! test sharing the test harness process cannot guarantee.

use fedl_linalg::rng::rng_for;
use fedl_linalg::{gemm_par_threshold_flops, Matrix};

/// Setting the environment variable before the first query must override
/// the built-in default, and products computed under the override must
/// still be bit-identical to the sequential kernel (the threshold is a
/// scheduling knob, never a numerics knob).
#[test]
fn env_override_is_honored_and_bit_safe() {
    // Set before the first call; the OnceLock caches this value for the
    // remainder of the process.
    std::env::set_var("FEDL_GEMM_PAR_FLOPS", "4096");
    assert_eq!(gemm_par_threshold_flops(), 4096);

    // 2*24*24*24 = 27648 flops > 4096: with the lowered threshold this
    // product takes the parallel-dispatch path even though the default
    // threshold (256 Ki flops) would have kept it sequential.
    let mut rng = rng_for(11, 3);
    let a = Matrix::uniform(24, 24, 2.0, &mut rng);
    let b = Matrix::uniform(24, 24, 2.0, &mut rng);
    let seq = a.matmul_with_threads(&b, 1);
    let par = a.matmul_with_threads(&b, 8);
    for (x, y) in seq.as_slice().iter().zip(par.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }

    // The cached value must not change even if the variable does.
    std::env::set_var("FEDL_GEMM_PAR_FLOPS", "123");
    assert_eq!(gemm_par_threshold_flops(), 4096);
}
