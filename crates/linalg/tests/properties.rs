//! Property-based tests for the linear-algebra substrate.

use fedl_linalg::{approx_eq, ops, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix with the given shape and bounded entries.
fn mat(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Shape triple for chained products, kept small so the naive reference
/// stays fast.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..8, 1usize..8, 1usize..8)
}

fn assert_mat_close(a: &Matrix, b: &Matrix, tol: f32) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!(approx_eq(*x, *y, tol), "{x} vs {y}");
    }
}

proptest! {
    #[test]
    fn matmul_distributes_over_addition((m, k, n) in dims(), seed in 0u64..1000) {
        let mut rng = fedl_linalg::rng::rng_for(seed, 0);
        let a = Matrix::uniform(m, k, 2.0, &mut rng);
        let b = Matrix::uniform(k, n, 2.0, &mut rng);
        let c = Matrix::uniform(k, n, 2.0, &mut rng);
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        assert_mat_close(&lhs, &rhs, 1e-3);
    }

    #[test]
    fn transpose_of_product_is_reversed_product((m, k, n) in dims(), seed in 0u64..1000) {
        let mut rng = fedl_linalg::rng::rng_for(seed, 1);
        let a = Matrix::uniform(m, k, 2.0, &mut rng);
        let b = Matrix::uniform(k, n, 2.0, &mut rng);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert_mat_close(&lhs, &rhs, 1e-3);
    }

    #[test]
    fn fused_transpose_kernels_match((m, k, n) in dims(), seed in 0u64..1000) {
        let mut rng = fedl_linalg::rng::rng_for(seed, 2);
        let a = Matrix::uniform(m, k, 2.0, &mut rng);
        let b = Matrix::uniform(m, n, 2.0, &mut rng);
        assert_mat_close(&a.t_matmul(&b), &a.transpose().matmul(&b), 1e-3);
        let c = Matrix::uniform(n, k, 2.0, &mut rng);
        assert_mat_close(&a.matmul_t(&c), &a.matmul(&c.transpose()), 1e-3);
    }

    #[test]
    fn softmax_rows_sum_to_one(m in mat(4, 6)) {
        let s = ops::softmax_rows(&m);
        for row in s.row_iter() {
            let sum: f32 = row.iter().sum();
            prop_assert!(approx_eq(sum, 1.0, 1e-5));
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn axpy_then_inverse_axpy_is_identity(m in mat(3, 5), alpha in -4.0f32..4.0) {
        let mut work = m.clone();
        let delta = Matrix::full(3, 5, 1.0);
        work.axpy(alpha, &delta);
        work.axpy(-alpha, &delta);
        assert_mat_close(&work, &m, 1e-4);
    }

    #[test]
    fn dot_is_symmetric_and_norm_consistent(m in mat(2, 7)) {
        let n2 = m.norm_sq();
        prop_assert!(approx_eq(m.dot(&m), n2, 1e-4));
        prop_assert!(n2 >= 0.0);
        prop_assert!(approx_eq(m.norm() * m.norm(), n2, 1e-3));
    }

    #[test]
    fn select_rows_preserves_content(idx in proptest::collection::vec(0usize..5, 0..10)) {
        let m = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32);
        let sel = m.select_rows(&idx);
        prop_assert_eq!(sel.rows(), idx.len());
        for (out_r, &src) in idx.iter().enumerate() {
            prop_assert_eq!(sel.row(out_r), m.row(src));
        }
    }

    #[test]
    fn clip_never_increases_norm(mut m in mat(3, 3), limit in 0.1f32..5.0) {
        let before = m.norm();
        ops::clip_inplace(&mut m, limit);
        prop_assert!(m.norm() <= before + 1e-6);
        prop_assert!(m.as_slice().iter().all(|v| v.abs() <= limit));
    }
}
