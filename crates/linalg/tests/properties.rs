//! Property-style tests for the linear-algebra substrate, driven by
//! seeded RNG loops (the workspace's offline replacement for proptest:
//! every case is enumerated from a fixed seed, so failures reproduce
//! exactly and the suite needs no registry dependency).

use fedl_linalg::rng::{rng_for, Rng, Xoshiro256pp};
use fedl_linalg::{approx_eq, ops, Matrix};

const CASES: u64 = 64;

/// Random shape triple for chained products, kept small so the naive
/// reference stays fast.
fn dims(rng: &mut Xoshiro256pp) -> (usize, usize, usize) {
    (rng.gen_range(1..8usize), rng.gen_range(1..8usize), rng.gen_range(1..8usize))
}

fn assert_mat_close(a: &Matrix, b: &Matrix, tol: f32) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!(approx_eq(*x, *y, tol), "{x} vs {y}");
    }
}

#[test]
fn matmul_distributes_over_addition() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed, 0);
        let (m, k, n) = dims(&mut rng);
        let a = Matrix::uniform(m, k, 2.0, &mut rng);
        let b = Matrix::uniform(k, n, 2.0, &mut rng);
        let c = Matrix::uniform(k, n, 2.0, &mut rng);
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        assert_mat_close(&lhs, &rhs, 1e-3);
    }
}

#[test]
fn transpose_of_product_is_reversed_product() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed, 1);
        let (m, k, n) = dims(&mut rng);
        let a = Matrix::uniform(m, k, 2.0, &mut rng);
        let b = Matrix::uniform(k, n, 2.0, &mut rng);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert_mat_close(&lhs, &rhs, 1e-3);
    }
}

#[test]
fn fused_transpose_kernels_match() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed, 2);
        let (m, k, n) = dims(&mut rng);
        let a = Matrix::uniform(m, k, 2.0, &mut rng);
        let b = Matrix::uniform(m, n, 2.0, &mut rng);
        assert_mat_close(&a.t_matmul(&b), &a.transpose().matmul(&b), 1e-3);
        let c = Matrix::uniform(n, k, 2.0, &mut rng);
        assert_mat_close(&a.matmul_t(&c), &a.matmul(&c.transpose()), 1e-3);
    }
}

#[test]
fn softmax_rows_sum_to_one() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed, 3);
        let m = Matrix::uniform(4, 6, 10.0, &mut rng);
        let s = ops::softmax_rows(&m);
        for row in s.row_iter() {
            let sum: f32 = row.iter().sum();
            assert!(approx_eq(sum, 1.0, 1e-5));
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}

#[test]
fn axpy_then_inverse_axpy_is_identity() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed, 4);
        let m = Matrix::uniform(3, 5, 10.0, &mut rng);
        let alpha = rng.gen_range(-4.0f32..4.0);
        let mut work = m.clone();
        let delta = Matrix::full(3, 5, 1.0);
        work.axpy(alpha, &delta);
        work.axpy(-alpha, &delta);
        assert_mat_close(&work, &m, 1e-4);
    }
}

#[test]
fn dot_is_symmetric_and_norm_consistent() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed, 5);
        let m = Matrix::uniform(2, 7, 10.0, &mut rng);
        let n2 = m.norm_sq();
        assert!(approx_eq(m.dot(&m), n2, 1e-4));
        assert!(n2 >= 0.0);
        assert!(approx_eq(m.norm() * m.norm(), n2, 1e-3));
    }
}

#[test]
fn select_rows_preserves_content() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed, 6);
        let len = rng.gen_range(0..10usize);
        let idx: Vec<usize> = (0..len).map(|_| rng.gen_range(0..5usize)).collect();
        let m = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32);
        let sel = m.select_rows(&idx);
        assert_eq!(sel.rows(), idx.len());
        for (out_r, &src) in idx.iter().enumerate() {
            assert_eq!(sel.row(out_r), m.row(src));
        }
    }
}

#[test]
fn clip_never_increases_norm() {
    for seed in 0..CASES {
        let mut rng = rng_for(seed, 7);
        let mut m = Matrix::uniform(3, 3, 10.0, &mut rng);
        let limit = rng.gen_range(0.1f32..5.0);
        let before = m.norm();
        ops::clip_inplace(&mut m, limit);
        assert!(m.norm() <= before + 1e-6);
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit));
    }
}
