//! Numerically careful element-wise and row-wise kernels shared by the
//! training substrate: softmax, log-sum-exp, ReLU, and broadcast helpers.

use crate::fastexp;
use crate::Matrix;

/// Row maximum as a 16-lane tree reduction (vectorizable, unlike the
/// strictly sequential left fold, which chains every `max` through one
/// accumulator).
///
/// Returns the same value as `row.iter().copied().fold(NEG_INFINITY,
/// f32::max)` for every input: `f32::max` is associative and commutative
/// on its value result (NaN is ignored symmetrically, and a `-0.0` vs
/// `+0.0` ambiguity cannot reach the callers' outputs — the maximum is
/// only subtracted before `exp`, where `exp(±0.0) == 1.0` exactly, or
/// added to a `ln` that never returns `-0.0`).
#[inline]
fn row_max(row: &[f32]) -> f32 {
    const LANES: usize = 16;
    let mut chunks = row.chunks_exact(LANES);
    let mut lanes = [f32::NEG_INFINITY; LANES];
    for c in chunks.by_ref() {
        for (l, &v) in lanes.iter_mut().zip(c) {
            *l = l.max(v);
        }
    }
    let mut m = f32::NEG_INFINITY;
    for &l in &lanes {
        m = m.max(l);
    }
    for &v in chunks.remainder() {
        m = m.max(v);
    }
    m
}

/// Row-wise softmax with the max-subtraction trick.
///
/// Each row of the result is a probability distribution; rows of all
/// `-inf`/huge magnitudes stay finite because the row maximum is
/// subtracted before exponentiation.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = Matrix::default();
    softmax_rows_into(logits, &mut out);
    out
}

/// [`softmax_rows`] writing into a caller-owned matrix (reshaped to match
/// `logits`); steady-state reuse performs no allocation.
pub fn softmax_rows_into(logits: &Matrix, out: &mut Matrix) {
    out.copy_from(logits);
    for row in out.as_mut_slice().chunks_exact_mut(logits.cols().max(1)) {
        let max = row_max(row);
        // Three vectorizable passes (subtract, exp, normalize) with a
        // sequential in-order sum between them: same values and same
        // accumulation order as the fused scalar loop, so the result is
        // bit-identical — `fastexp` matches libm bit for bit.
        for v in row.iter_mut() {
            *v -= max;
        }
        fastexp::exp_inplace(row);
        let mut sum = 0.0;
        for &v in row.iter() {
            sum += v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
}

/// Row-wise `log(sum(exp(row)))`, stabilized by max subtraction.
pub fn log_sum_exp_rows(logits: &Matrix) -> Vec<f32> {
    let mut out = Vec::new();
    log_sum_exp_rows_into(logits, &mut out);
    out
}

/// [`log_sum_exp_rows`] writing into a caller-owned vector (cleared and
/// refilled); steady-state reuse performs no allocation.
pub fn log_sum_exp_rows_into(logits: &Matrix, out: &mut Vec<f32>) {
    out.clear();
    out.extend(logits.row_iter().map(|row| {
        let max = row_max(row);
        if !max.is_finite() {
            return max;
        }
        // Exponentiate through a stack tile so `fastexp` can batch; the
        // sum still accumulates in row order, so the bits match the
        // scalar `map(exp).sum()` form exactly.
        let mut sum = 0.0f32;
        let mut tile = [0.0f32; 64];
        for chunk in row.chunks(tile.len()) {
            let t = &mut tile[..chunk.len()];
            for (d, &v) in t.iter_mut().zip(chunk) {
                *d = v - max;
            }
            fastexp::exp_inplace(t);
            for &v in t.iter() {
                sum += v;
            }
        }
        max + sum.ln()
    }));
}

/// ReLU applied element-wise, returning a new matrix.
pub fn relu(m: &Matrix) -> Matrix {
    m.map(|v| v.max(0.0))
}

/// ReLU written into a caller-owned matrix (reshaped to match `m`).
pub fn relu_into(m: &Matrix, out: &mut Matrix) {
    out.copy_from(m);
    for v in out.as_mut_slice() {
        *v = v.max(0.0);
    }
}

/// Derivative mask of ReLU at the *pre-activation* values: 1 where
/// `pre > 0`, else 0.
pub fn relu_grad_mask(pre: &Matrix) -> Matrix {
    pre.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
}

/// Backward ReLU in place: multiplies each element of `delta` by the
/// ReLU derivative at the matching pre-activation. Bit-identical to
/// `delta.hadamard(&relu_grad_mask(pre))` (same `*` by `1.0`/`0.0`)
/// without the two temporaries.
///
/// # Panics
/// Panics on shape mismatch.
pub fn relu_backward_inplace(delta: &mut Matrix, pre: &Matrix) {
    assert_eq!(delta.shape(), pre.shape(), "relu backward shape mismatch");
    for (d, &p) in delta.as_mut_slice().iter_mut().zip(pre.as_slice()) {
        *d *= if p > 0.0 { 1.0 } else { 0.0 };
    }
}

/// Adds the `1 x cols` row `bias` to every row of `m` in place.
///
/// # Panics
/// Panics if `bias` is not `1 x m.cols()`.
pub fn add_row_broadcast(m: &mut Matrix, bias: &Matrix) {
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), m.cols(), "bias width mismatch");
    let cols = m.cols().max(1);
    let b = bias.row(0);
    for row in m.as_mut_slice().chunks_exact_mut(cols) {
        for (v, &bv) in row.iter_mut().zip(b) {
            *v += bv;
        }
    }
}

/// Clips every element of `m` into `[-limit, limit]` in place and returns
/// the number of clipped elements. Gradient clipping keeps the DANE local
/// solves stable when a client draws a pathological mini-batch.
pub fn clip_inplace(m: &mut Matrix, limit: f32) -> usize {
    assert!(limit > 0.0, "clip limit must be positive");
    let mut clipped = 0;
    for v in m.as_mut_slice() {
        if *v > limit {
            *v = limit;
            clipped += 1;
        } else if *v < -limit {
            *v = -limit;
            clipped += 1;
        }
    }
    clipped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn softmax_rows_are_distributions() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = softmax_rows(&m);
        for row in s.row_iter() {
            let sum: f32 = row.iter().sum();
            assert!(approx_eq(sum, 1.0, 1e-6), "row sums to {sum}");
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        // Monotone: larger logit, larger probability.
        assert!(s.get(0, 2) > s.get(0, 1));
    }

    #[test]
    fn softmax_stable_for_huge_logits() {
        let m = Matrix::from_vec(1, 3, vec![1000.0, 1000.0, 999.0]);
        let s = softmax_rows(&m);
        assert!(!s.has_non_finite());
        assert!(approx_eq(s.sum(), 1.0, 1e-6));
    }

    #[test]
    fn softmax_shift_invariant() {
        let a = Matrix::from_vec(1, 3, vec![0.0, 1.0, 2.0]);
        let b = Matrix::from_vec(1, 3, vec![10.0, 11.0, 12.0]);
        let sa = softmax_rows(&a);
        let sb = softmax_rows(&b);
        for (x, y) in sa.as_slice().iter().zip(sb.as_slice()) {
            assert!(approx_eq(*x, *y, 1e-6));
        }
    }

    #[test]
    fn log_sum_exp_matches_naive_in_safe_range() {
        let m = Matrix::from_vec(1, 3, vec![0.1, 0.2, 0.3]);
        let lse = log_sum_exp_rows(&m)[0];
        let naive: f32 = m.as_slice().iter().map(|v| v.exp()).sum::<f32>().ln();
        assert!(approx_eq(lse, naive, 1e-6));
    }

    #[test]
    fn relu_and_mask_agree() {
        let m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]);
        let r = relu(&m);
        assert_eq!(r.as_slice(), &[0.0, 0.0, 0.5, 2.0]);
        let g = relu_grad_mask(&m);
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn broadcast_adds_bias_to_each_row() {
        let mut m = Matrix::zeros(2, 2);
        let b = Matrix::row_vector(vec![1.0, -2.0]);
        add_row_broadcast(&mut m, &b);
        assert_eq!(m.row(0), &[1.0, -2.0]);
        assert_eq!(m.row(1), &[1.0, -2.0]);
    }

    #[test]
    fn into_variants_match_owned_forms() {
        let m = Matrix::from_vec(2, 3, vec![1.0, -2.0, 3.0, 0.5, 0.0, -1.5]);
        let mut s = Matrix::default();
        softmax_rows_into(&m, &mut s);
        assert_eq!(s.as_slice(), softmax_rows(&m).as_slice());
        let mut lse = vec![99.0; 7]; // stale contents must be discarded
        log_sum_exp_rows_into(&m, &mut lse);
        assert_eq!(lse, log_sum_exp_rows(&m));
        let mut r = Matrix::default();
        relu_into(&m, &mut r);
        assert_eq!(r.as_slice(), relu(&m).as_slice());
        let mut d = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, -5.0, 6.0]);
        let expected = d.hadamard(&relu_grad_mask(&m));
        relu_backward_inplace(&mut d, &m);
        assert_eq!(d.as_slice(), expected.as_slice());
    }

    #[test]
    fn clip_counts_and_bounds() {
        let mut m = Matrix::from_vec(1, 4, vec![-5.0, -0.5, 0.5, 5.0]);
        let n = clip_inplace(&mut m, 1.0);
        assert_eq!(n, 2);
        assert_eq!(m.as_slice(), &[-1.0, -0.5, 0.5, 1.0]);
    }

    /// The lane-reduced row maximum must equal the sequential left fold
    /// bit for bit on every length (full lanes, remainders, empty) and
    /// ignore NaN the same way.
    #[test]
    fn row_max_matches_sequential_fold() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        for len in [0usize, 1, 5, 15, 16, 17, 31, 32, 64, 100, 257] {
            let row: Vec<f32> = (0..len).map(|_| next() * 8.0).collect();
            let seq = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            assert_eq!(super::row_max(&row).to_bits(), seq.to_bits(), "len {len}");
        }
        let with_nan = [1.0, f32::NAN, 3.0, f32::NAN, 2.0];
        assert_eq!(super::row_max(&with_nan), 3.0);
        assert_eq!(super::row_max(&[f32::NEG_INFINITY; 4]), f32::NEG_INFINITY);
    }
}
