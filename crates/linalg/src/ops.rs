//! Numerically careful element-wise and row-wise kernels shared by the
//! training substrate: softmax, log-sum-exp, ReLU, and broadcast helpers.

use crate::Matrix;

/// Row-wise softmax with the max-subtraction trick.
///
/// Each row of the result is a probability distribution; rows of all
/// `-inf`/huge magnitudes stay finite because the row maximum is
/// subtracted before exponentiation.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for row in out.as_mut_slice().chunks_exact_mut(logits.cols().max(1)) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    out
}

/// Row-wise `log(sum(exp(row)))`, stabilized by max subtraction.
pub fn log_sum_exp_rows(logits: &Matrix) -> Vec<f32> {
    logits
        .row_iter()
        .map(|row| {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if !max.is_finite() {
                return max;
            }
            let sum: f32 = row.iter().map(|v| (v - max).exp()).sum();
            max + sum.ln()
        })
        .collect()
}

/// ReLU applied element-wise, returning a new matrix.
pub fn relu(m: &Matrix) -> Matrix {
    m.map(|v| v.max(0.0))
}

/// Derivative mask of ReLU at the *pre-activation* values: 1 where
/// `pre > 0`, else 0.
pub fn relu_grad_mask(pre: &Matrix) -> Matrix {
    pre.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
}

/// Adds the `1 x cols` row `bias` to every row of `m` in place.
///
/// # Panics
/// Panics if `bias` is not `1 x m.cols()`.
pub fn add_row_broadcast(m: &mut Matrix, bias: &Matrix) {
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), m.cols(), "bias width mismatch");
    let cols = m.cols().max(1);
    let b = bias.row(0);
    for row in m.as_mut_slice().chunks_exact_mut(cols) {
        for (v, &bv) in row.iter_mut().zip(b) {
            *v += bv;
        }
    }
}

/// Clips every element of `m` into `[-limit, limit]` in place and returns
/// the number of clipped elements. Gradient clipping keeps the DANE local
/// solves stable when a client draws a pathological mini-batch.
pub fn clip_inplace(m: &mut Matrix, limit: f32) -> usize {
    assert!(limit > 0.0, "clip limit must be positive");
    let mut clipped = 0;
    for v in m.as_mut_slice() {
        if *v > limit {
            *v = limit;
            clipped += 1;
        } else if *v < -limit {
            *v = -limit;
            clipped += 1;
        }
    }
    clipped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn softmax_rows_are_distributions() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = softmax_rows(&m);
        for row in s.row_iter() {
            let sum: f32 = row.iter().sum();
            assert!(approx_eq(sum, 1.0, 1e-6), "row sums to {sum}");
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        // Monotone: larger logit, larger probability.
        assert!(s.get(0, 2) > s.get(0, 1));
    }

    #[test]
    fn softmax_stable_for_huge_logits() {
        let m = Matrix::from_vec(1, 3, vec![1000.0, 1000.0, 999.0]);
        let s = softmax_rows(&m);
        assert!(!s.has_non_finite());
        assert!(approx_eq(s.sum(), 1.0, 1e-6));
    }

    #[test]
    fn softmax_shift_invariant() {
        let a = Matrix::from_vec(1, 3, vec![0.0, 1.0, 2.0]);
        let b = Matrix::from_vec(1, 3, vec![10.0, 11.0, 12.0]);
        let sa = softmax_rows(&a);
        let sb = softmax_rows(&b);
        for (x, y) in sa.as_slice().iter().zip(sb.as_slice()) {
            assert!(approx_eq(*x, *y, 1e-6));
        }
    }

    #[test]
    fn log_sum_exp_matches_naive_in_safe_range() {
        let m = Matrix::from_vec(1, 3, vec![0.1, 0.2, 0.3]);
        let lse = log_sum_exp_rows(&m)[0];
        let naive: f32 = m.as_slice().iter().map(|v| v.exp()).sum::<f32>().ln();
        assert!(approx_eq(lse, naive, 1e-6));
    }

    #[test]
    fn relu_and_mask_agree() {
        let m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]);
        let r = relu(&m);
        assert_eq!(r.as_slice(), &[0.0, 0.0, 0.5, 2.0]);
        let g = relu_grad_mask(&m);
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn broadcast_adds_bias_to_each_row() {
        let mut m = Matrix::zeros(2, 2);
        let b = Matrix::row_vector(vec![1.0, -2.0]);
        add_row_broadcast(&mut m, &b);
        assert_eq!(m.row(0), &[1.0, -2.0]);
        assert_eq!(m.row(1), &[1.0, -2.0]);
    }

    #[test]
    fn clip_counts_and_bounds() {
        let mut m = Matrix::from_vec(1, 4, vec![-5.0, -0.5, 0.5, 5.0]);
        let n = clip_inplace(&mut m, 1.0);
        assert_eq!(n, 2);
        assert_eq!(m.as_slice(), &[-1.0, -0.5, 0.5, 1.0]);
    }
}
