//! The lazily initialized, reusable worker pool under [`crate::par`].
//!
//! The first parallel call spawns `max_threads() - 1` daemon worker
//! threads (the calling thread is always the team's last member); every
//! later call reuses them, so the per-call cost of `par_map` /
//! `par_zip_chunks` drops from N thread spawns to a queue push — the
//! first step of the ROADMAP hot-kernel item.
//!
//! Execution model: a parallel call packages its borrowed closures as a
//! [`Batch`], enqueues up to `helpers` "come help this batch" jobs on the
//! shared queue, then drains the batch itself before blocking on the
//! batch's completion latch. Because the caller always helps first, a
//! batch completes even when every pool worker is busy — which makes
//! nested parallelism (GEMM inside a `par_map` task) deadlock-free: any
//! task still unfinished when a thread starts waiting is actively running
//! on some other thread.
//!
//! Panics inside a task are caught, the first payload is stashed on the
//! batch, and [`run_batch`] re-raises it with `resume_unwind` after the
//! whole batch has drained — preserving the scoped-spawn contract that
//! task panics propagate to the caller and never strand a borrow.
//!
//! This is the one module in the workspace that needs `unsafe`: a
//! persistent pool must hold tasks that borrow the caller's stack, which
//! requires erasing their lifetimes (scoped threads are the only safe
//! alternative, and per-call scoped spawning is exactly what this module
//! replaces). The erasure is sound because `run_batch` never returns —
//! normally or by unwinding — until every erased task has finished, and
//! everything that can outlive the call (queued helper jobs, the batch
//! allocation) holds only an `Arc` to post-completion state with no
//! borrowed data in it.
#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::par::max_threads;

/// A unit of borrowed work dispatched by `par_map` / `par_zip_chunks`.
pub(crate) type Task<'a> = Box<dyn FnOnce() + Send + 'a>;

/// A queued "help this batch" job; owns an `Arc` to the batch it serves.
type HelperJob = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<HelperJob>>,
    work_ready: Condvar,
}

struct Pool {
    shared: Arc<PoolShared>,
    /// Worker-thread count (team size minus the calling thread).
    helpers: usize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let shared =
            Arc::new(PoolShared { queue: Mutex::new(VecDeque::new()), work_ready: Condvar::new() });
        let helpers = max_threads().saturating_sub(1);
        for i in 0..helpers {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("fedl-par-{i}"))
                .spawn(move || worker_loop(&sh))
                .expect("failed to spawn fedl-par pool worker");
        }
        Pool { shared, helpers }
    })
}

fn worker_loop(sh: &PoolShared) {
    loop {
        let job = {
            let mut queue = sh.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = sh.work_ready.wait(queue).expect("pool queue poisoned");
            }
        };
        job();
    }
}

struct BatchStatus {
    unfinished: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// One parallel call's worth of tasks plus its completion latch. Tasks
/// hold lifetime-erased borrows; `status`/`done` outlive the call safely
/// (no borrowed data) so late-arriving helpers can observe "all drained".
struct Batch {
    tasks: Mutex<Vec<Task<'static>>>,
    status: Mutex<BatchStatus>,
    done: Condvar,
}

/// Drains `batch` until its task list is empty, recording completions
/// (and the first panic payload) on the status latch.
fn help(batch: &Batch) {
    loop {
        let task = batch.tasks.lock().expect("batch task list poisoned").pop();
        let Some(task) = task else { return };
        let outcome = catch_unwind(AssertUnwindSafe(task));
        let mut status = batch.status.lock().expect("batch status poisoned");
        if let Err(payload) = outcome {
            status.panic.get_or_insert(payload);
        }
        status.unfinished -= 1;
        if status.unfinished == 0 {
            batch.done.notify_all();
        }
    }
}

/// Runs every task to completion across the pool plus the calling
/// thread, then returns. Panics with the first task's panic payload if
/// any task panicked — but only after the entire batch has drained, so
/// no borrow captured by a task can escape the call.
pub(crate) fn run_batch(tasks: Vec<Task<'_>>) {
    let n = tasks.len();
    if n == 0 {
        return;
    }
    if n == 1 {
        // A single task runs inline: no erasure, no queue traffic.
        let task = tasks.into_iter().next().expect("len checked");
        task();
        return;
    }
    // SAFETY: the erased tasks are confined to `batch.tasks`, and this
    // function blocks below until `status.unfinished == 0`, which only
    // happens after every task has been popped and has finished running
    // (each decrement follows the task's return or caught panic). Thus
    // no erased task — nor anything it borrows — is live once `run_batch`
    // returns or unwinds. What does outlive the call (the `Arc<Batch>`
    // clones inside queued helper jobs) sees an empty task list and
    // post-completion status containing no borrowed data.
    let tasks: Vec<Task<'static>> = tasks
        .into_iter()
        .map(|t| unsafe { std::mem::transmute::<Task<'_>, Task<'static>>(t) })
        .collect();
    let batch = Arc::new(Batch {
        tasks: Mutex::new(tasks),
        status: Mutex::new(BatchStatus { unfinished: n, panic: None }),
        done: Condvar::new(),
    });
    let pool = pool();
    // The caller drains too, so at most n - 1 helpers are useful.
    let wanted = pool.helpers.min(n - 1);
    if wanted > 0 {
        let mut queue = pool.shared.queue.lock().expect("pool queue poisoned");
        for _ in 0..wanted {
            let served = Arc::clone(&batch);
            queue.push_back(Box::new(move || help(&served)));
        }
        drop(queue);
        pool.shared.work_ready.notify_all();
    }
    help(&batch);
    let mut status = batch.status.lock().expect("batch status poisoned");
    while status.unfinished > 0 {
        status = batch.done.wait(status).expect("batch status poisoned");
    }
    let panic = status.panic.take();
    drop(status);
    if let Some(payload) = panic {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn batch_runs_every_task_exactly_once() {
        let hits = AtomicUsize::new(0);
        let tasks: Vec<Task<'_>> = (0..64)
            .map(|_| {
                Box::new(|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as Task<'_>
            })
            .collect();
        run_batch(tasks);
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn consecutive_batches_reuse_the_pool() {
        // Two back-to-back batches must both complete (the queue drains
        // stale helper jobs between calls without touching dead batches).
        for round in 0..3 {
            let hits = AtomicUsize::new(0);
            let tasks: Vec<Task<'_>> = (0..16)
                .map(|_| {
                    Box::new(|| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }) as Task<'_>
                })
                .collect();
            run_batch(tasks);
            assert_eq!(hits.load(Ordering::Relaxed), 16, "round {round}");
        }
    }

    #[test]
    fn task_panic_propagates_after_the_batch_drains() {
        let hits = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Task<'_>> = (0..8)
                .map(|i| {
                    let hits = &hits;
                    Box::new(move || {
                        if i == 3 {
                            panic!("boom from task 3");
                        }
                        hits.fetch_add(1, Ordering::Relaxed);
                    }) as Task<'_>
                })
                .collect();
            run_batch(tasks);
        }));
        let payload = result.expect_err("batch panic must propagate");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(message.contains("boom"), "unexpected payload {message:?}");
        // Every non-panicking task still ran: the batch drains fully
        // before the panic is re-raised.
        assert_eq!(hits.load(Ordering::Relaxed), 7);
    }
}
