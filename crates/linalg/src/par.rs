//! Minimal data-parallel primitives over a reusable worker pool.
//!
//! A from-scratch replacement for the rayon call sites in this workspace
//! (GEMM row loops, per-client local solves, replication fan-out). The
//! work shapes here are coarse and regular — a few dozen to a few
//! thousand equally sized items — so static contiguous splitting across
//! a fixed thread team matches work stealing in practice while keeping
//! the substrate dependency-free.
//!
//! Work is dispatched through the private `pool` module: a lazily initialized,
//! process-lifetime worker pool (sized by [`max_threads`]) that replaces
//! the original per-call `std::thread::scope` spawning, so a hot kernel
//! calling `par_map` in a loop pays a queue push per call instead of a
//! thread spawn per team member. Task panics still propagate to the
//! caller, and nested parallel calls (GEMM inside a `par_map` task) are
//! deadlock-free because the calling thread always drains its own batch
//! before waiting.
//!
//! All entry points fall back to the serial path when the input is small
//! or only one hardware thread is available, so callers never pay
//! fork-join overhead on tiny inputs.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::pool;

/// Cached thread-team size (0 = not yet resolved).
static CACHED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Thread-team size: `FEDL_THREADS` when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`].
pub fn max_threads() -> usize {
    let cached = CACHED_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("FEDL_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    CACHED_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Pins [`max_threads`] to `n` for the rest of the process.
///
/// Test-harness hook: the allocation-regression suites force the
/// sequential path without relaunching under a different
/// `FEDL_THREADS` (the value is cached after first read, so flipping
/// the environment mid-process has no effect). Not for production use —
/// the worker pool may already be sized from the previous value.
#[doc(hidden)]
pub fn force_max_threads(n: usize) {
    CACHED_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Splits `len` items into at most `teams` contiguous index ranges of
/// near-equal size (first ranges get the remainder).
pub(crate) fn split_ranges(len: usize, teams: usize) -> Vec<std::ops::Range<usize>> {
    let teams = teams.min(len).max(1);
    let base = len / teams;
    let extra = len % teams;
    let mut ranges = Vec::with_capacity(teams);
    let mut start = 0;
    for t in 0..teams {
        let size = base + usize::from(t < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Equivalent to `items.iter().map(f).collect()` but with the items
/// statically split across the worker pool's thread team. `f` runs
/// exactly once per item; panics propagate to the caller.
pub fn par_map<T: Sync, U: Send, F: Fn(&T) -> U + Sync>(items: &[T], f: F) -> Vec<U> {
    let threads = max_threads();
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let ranges = split_ranges(items.len(), threads);
    let f = &f;
    let mut slots: Vec<Option<Vec<U>>> =
        std::iter::repeat_with(|| None).take(ranges.len()).collect();
    let tasks: Vec<pool::Task<'_>> = slots
        .iter_mut()
        .zip(ranges)
        .map(|(slot, range)| {
            Box::new(move || *slot = Some(items[range].iter().map(f).collect::<Vec<U>>()))
                as pool::Task<'_>
        })
        .collect();
    pool::run_batch(tasks);
    slots.into_iter().flat_map(|s| s.expect("batch ran every task")).collect()
}

/// Runs `f(i, out_chunk, in_chunk)` for every aligned pair of the `i`-th
/// `out_chunk`-sized slice of `out` and `in_chunk`-sized slice of
/// `input`, in parallel.
///
/// This is the GEMM row loop — and, with chunk size 1, the columnar
/// per-client kernel pass (docs/SCALE.md): `out` is split into disjoint
/// row slices (so each worker gets exclusive `&mut` access to its rows),
/// `input` into the matching read-only slices. Generic over the element
/// types, so an `f64` column can be gathered through a `usize` id column
/// just as well as `f32` GEMM rows. Extra read-only columns can be
/// captured by the closure and indexed with the pair index `i` (chunk
/// size 1 makes `i` the element index). Trailing elements that do not
/// fill a complete chunk are ignored, matching
/// `chunks_exact_mut`/`chunks_exact` semantics.
///
/// # Panics
/// Panics if either chunk size is zero.
pub fn par_zip_chunks<T, S, F>(out: &mut [T], out_chunk: usize, input: &[S], in_chunk: usize, f: F)
where
    T: Send,
    S: Sync,
    F: Fn(usize, &mut [T], &[S]) + Sync,
{
    par_zip_chunks_grained(out, out_chunk, input, in_chunk, 1, f)
}

/// [`par_zip_chunks`] with an explicit sequential grain: when the pair
/// count is at most `grain` the loop runs inline on the caller (zero
/// dispatch, zero allocation), bit-identical to the parallel split
/// because every pair's computation is independent. Columnar passes
/// over small cohorts use this to stay allocation-free; the 10k+ scale
/// tiers still fan out.
pub fn par_zip_chunks_grained<T, S, F>(
    out: &mut [T],
    out_chunk: usize,
    input: &[S],
    in_chunk: usize,
    grain: usize,
    f: F,
) where
    T: Send,
    S: Sync,
    F: Fn(usize, &mut [T], &[S]) + Sync,
{
    assert!(out_chunk > 0 && in_chunk > 0, "chunk sizes must be positive");
    let pairs = (out.len() / out_chunk).min(input.len() / in_chunk);
    let threads = max_threads();
    if threads <= 1 || pairs <= grain.max(1) {
        for (i, (o, inp)) in
            out.chunks_exact_mut(out_chunk).zip(input.chunks_exact(in_chunk)).enumerate()
        {
            f(i, o, inp);
        }
        return;
    }
    let ranges = split_ranges(pairs, threads);
    let f = &f;
    let mut tasks: Vec<pool::Task<'_>> = Vec::with_capacity(ranges.len());
    let mut rest = out;
    let mut consumed = 0usize;
    for range in ranges {
        let rows = range.len();
        let (mine, tail) = rest.split_at_mut(rows * out_chunk);
        rest = tail;
        let in_slice = &input[range.start * in_chunk..range.end * in_chunk];
        let first = consumed;
        tasks.push(Box::new(move || {
            for (j, (o, inp)) in
                mine.chunks_exact_mut(out_chunk).zip(in_slice.chunks_exact(in_chunk)).enumerate()
            {
                f(first + j, o, inp);
            }
        }));
        consumed += rows;
    }
    pool::run_batch(tasks);
}

/// Fixed reduction-chunk width for [`det_sum`] / [`det_dot`].
///
/// Deliberately a constant (never a function of the thread count): the
/// chunking fully determines the floating-point association of the
/// reduction, so results are reproducible across machines, `FEDL_THREADS`
/// settings, and serial/parallel paths. Any reduction over at most this
/// many terms is bit-identical to the plain sequential left fold.
pub const DET_CHUNK: usize = 8192;

/// Deterministic (thread-count-independent) chunked sum
/// `init + Σ_{i<n} term(i)`.
///
/// For `n <= DET_CHUNK` this is exactly the sequential left fold
/// `((init + t₀) + t₁) + …` — bit-identical to the per-element loops it
/// replaces in small scenarios. For larger `n` the terms are summed in
/// fixed [`DET_CHUNK`]-sized chunks (each a 0-seeded sequential fold,
/// evaluated in parallel) and the chunk partials are folded onto `init`
/// in chunk order, so the association depends only on `(init, n)`, never
/// on the thread count.
pub fn det_sum<F: Fn(usize) -> f64 + Sync>(init: f64, n: usize, term: F) -> f64 {
    if n <= DET_CHUNK {
        return (0..n).fold(init, |acc, i| acc + term(i));
    }
    let chunks: Vec<usize> = (0..n.div_ceil(DET_CHUNK)).collect();
    let partials = par_map(&chunks, |&c| {
        let start = c * DET_CHUNK;
        let end = (start + DET_CHUNK).min(n);
        (start..end).fold(0.0, |acc, i| acc + term(i))
    });
    partials.into_iter().fold(init, |acc, p| acc + p)
}

/// Deterministic dot product `Σ aᵢ·bᵢ` over the common prefix of `a` and
/// `b`, with [`det_sum`]'s fixed-chunk association (equals
/// `a.iter().zip(b).map(|(x, y)| x * y).sum()` whenever the length is at
/// most [`DET_CHUNK`]).
pub fn det_dot(a: &[f64], b: &[f64]) -> f64 {
    det_sum(0.0, a.len().min(b.len()), |i| a[i] * b[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_and_values() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_uneven_split() {
        // A length that does not divide evenly by any typical team size.
        let items: Vec<usize> = (0..1013).collect();
        let out = par_map(&items, |&x| x + 1);
        assert_eq!(out.len(), 1013);
        assert_eq!(out[0], 1);
        assert_eq!(out[1012], 1013);
    }

    #[test]
    fn par_zip_chunks_matches_serial() {
        let rows = 37;
        let out_chunk = 5;
        let in_chunk = 3;
        let input: Vec<f32> = (0..rows * in_chunk).map(|i| i as f32).collect();
        let mut par_out = vec![0.0f32; rows * out_chunk];
        let mut ser_out = vec![0.0f32; rows * out_chunk];
        let body = |i: usize, o: &mut [f32], inp: &[f32]| {
            for (j, slot) in o.iter_mut().enumerate() {
                *slot = inp.iter().sum::<f32>() + (i * j) as f32;
            }
        };
        par_zip_chunks(&mut par_out, out_chunk, &input, in_chunk, body);
        for (i, (o, inp)) in
            ser_out.chunks_exact_mut(out_chunk).zip(input.chunks_exact(in_chunk)).enumerate()
        {
            body(i, o, inp);
        }
        assert_eq!(par_out, ser_out);
    }

    #[test]
    fn par_zip_chunks_is_generic_over_element_types() {
        // A gather: f64 column indexed through a usize id column.
        let col: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let ids: Vec<usize> = vec![3, 99, 0, 42, 7];
        let mut out = vec![0.0f64; ids.len()];
        par_zip_chunks(&mut out, 1, &ids, 1, |_, o, id| o[0] = col[id[0]]);
        assert_eq!(out, vec![1.5, 49.5, 0.0, 21.0, 3.5]);
    }

    #[test]
    fn grained_variant_matches_plain_zip_chunks() {
        let input: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let mut a = vec![0.0f32; 64];
        let mut b = vec![0.0f32; 64];
        let body = |i: usize, o: &mut [f32], inp: &[f32]| o[0] = inp[0] * 2.0 + i as f32;
        par_zip_chunks(&mut a, 1, &input, 1, body);
        par_zip_chunks_grained(&mut b, 1, &input, 1, 4096, body);
        assert_eq!(a, b);
    }

    #[test]
    fn det_sum_matches_sequential_fold_below_chunk() {
        let terms: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let seq = terms.iter().fold(0.25, |acc, t| acc + t);
        let det = det_sum(0.25, terms.len(), |i| terms[i]);
        assert_eq!(seq.to_bits(), det.to_bits());
    }

    #[test]
    fn det_sum_is_thread_count_independent_above_chunk() {
        // The chunked association must be a pure function of (init, n):
        // recomputing yields bit-identical results, and the value agrees
        // with the sequential sum to reduction-rounding tolerance.
        let n = 3 * DET_CHUNK + 17;
        let term = |i: usize| ((i % 97) as f64) * 1e-3 - 0.048;
        let a = det_sum(1.0, n, term);
        let b = det_sum(1.0, n, term);
        assert_eq!(a.to_bits(), b.to_bits());
        let seq = (0..n).fold(1.0, |acc, i| acc + term(i));
        assert!((a - seq).abs() < 1e-9, "{a} vs {seq}");
    }

    #[test]
    fn det_dot_matches_iterator_dot_below_chunk() {
        let a: Vec<f64> = (0..257).map(|i| (i as f64).cos()).collect();
        let b: Vec<f64> = (0..257).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let seq: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(seq.to_bits(), det_dot(&a, &b).to_bits());
    }

    #[test]
    fn par_map_nests_without_deadlock() {
        // GEMM inside a par_map task is the real workload shape; the
        // pool must let the outer tasks drain their own inner batches.
        let outer: Vec<usize> = (0..8).collect();
        let result = par_map(&outer, |&o| {
            let inner: Vec<usize> = (0..256).collect();
            par_map(&inner, |&i| i * o).iter().sum::<usize>()
        });
        let expected: Vec<usize> = outer.iter().map(|&o| o * (255 * 256) / 2).collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn par_map_propagates_task_panics() {
        let items: Vec<usize> = (0..100).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map(&items, |&x| {
                if x == 57 {
                    panic!("bad item");
                }
                x
            })
        });
        assert!(caught.is_err(), "panic inside par_map must reach the caller");
    }

    #[test]
    fn split_ranges_cover_everything_in_order() {
        for len in [0usize, 1, 7, 16, 1000] {
            for teams in [1usize, 2, 3, 8, 64] {
                let ranges = split_ranges(len, teams);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, len);
            }
        }
    }
}
