//! Vectorizable `expf` for the softmax/log-sum-exp hot loops.
//!
//! `exp` dominates the softmax kernel (~80% of its runtime when measured
//! against a copy of the loop with the `exp` call removed), and the libm
//! call in the middle of the row loop blocks vectorization of everything
//! around it. This module ports the table-driven `expf` algorithm used by
//! glibc ≥ 2.27 (originally from ARM's optimized-routines) into inlinable
//! Rust so whole rows can be exponentiated in SIMD-friendly batches.
//!
//! # Bit-compatibility
//!
//! The port is *bit-identical to this platform's libm* for every `f32`
//! with `|x| < 88`: an exhaustive sweep over all 2^32 bit patterns found
//! zero mismatches against glibc's FMA-contracted build once `r` was
//! computed with a fused multiply-add (`r = fma(InvLn2N·x, -kd)` — glibc
//! compiles the reference C with `-ffp-contract=fast`, which fuses that
//! step across statements; without the fusion two inputs differ by 1 ulp).
//! Inputs with `|x| ≥ 88` (including ±inf and NaN) delegate to libm, so
//! overflow, underflow-to-subnormal, and special-value behaviour are
//! libm's own by construction.
//!
//! Within a build the function is a pure bitwise function of its input —
//! no tables are computed at runtime and no platform-dispatched branches
//! exist — so replacing `f32::exp` with [`exp_f32`] preserves the
//! workspace's bit-reproducibility guarantees.

/// log2(table size); the table holds 2^(i/32) for one octave.
const TABLE_BITS: u32 = 5;
/// Table size.
const N: u64 = 1 << TABLE_BITS;
/// 1.5 · 2^52: adding it to a |z| < 2^51 double rounds z to the nearest
/// integer in the low mantissa bits (round-to-even, matching libm).
const SHIFT: f64 = 6755399441055744.0;
/// `32 / ln(2)` with the exact bit pattern glibc uses (`InvLn2N`).
const INV_LN2_N: f64 = f64::from_bits(0x40471547652B82FE);
/// Degree-3 polynomial for 2^r on |r| ≤ 1/64, coefficients pre-divided
/// by N, N², N³ exactly (power-of-two scalings) as in glibc.
const C: [f64; 3] = [
    f64::from_bits(0x3EBC6AF84B912394),
    f64::from_bits(0x3F2EBFCE50FAC4F3),
    f64::from_bits(0x3F962E42FF0C52D6),
];
/// `tab[i] = bits(2^(i/32)) - (i << 47)`: the low exponent bits carry
/// `i`, so adding `ki << 47` reconstructs `2^(k/32)` for integer `k`
/// without a second shift/mask. Constants from glibc's `__exp2f_data`.
const TAB: [u64; 32] = [
    0x3ff0000000000000,
    0x3fefd9b0d3158574,
    0x3fefb5586cf9890f,
    0x3fef9301d0125b51,
    0x3fef72b83c7d517b,
    0x3fef54873168b9aa,
    0x3fef387a6e756238,
    0x3fef1e9df51fdee1,
    0x3fef06fe0a31b715,
    0x3feef1a7373aa9cb,
    0x3feedea64c123422,
    0x3feece086061892d,
    0x3feebfdad5362a27,
    0x3feeb42b569d4f82,
    0x3feeab07dd485429,
    0x3feea47eb03a5585,
    0x3feea09e667f3bcd,
    0x3fee9f75e8ec5f74,
    0x3feea11473eb0187,
    0x3feea589994cce13,
    0x3feeace5422aa0db,
    0x3feeb737b0cdc5e5,
    0x3feec49182a3f090,
    0x3feed503b23e255d,
    0x3feee89f995ad3ad,
    0x3feeff76f2fb5e47,
    0x3fef199bdd85529c,
    0x3fef3720dcef9069,
    0x3fef5818dcfba487,
    0x3fef7c97337b9b5f,
    0x3fefa4afa2a490da,
    0x3fefd0765b6e4540,
];
/// Top 12 bits (sign dropped) of 88.0f32; at or beyond this magnitude
/// the result overflows/underflows and libm's special handling applies.
const ABSTOP_LIMIT: u32 = 0x42B;

/// True when the fast path covers `x` exactly (|x| < 88, finite).
#[inline(always)]
fn in_fast_domain(x: f32) -> bool {
    (x.to_bits() >> 20) & 0x7FF < ABSTOP_LIMIT
}

/// Core fast path. Caller must ensure [`in_fast_domain`].
#[inline(always)]
fn exp_core(x: f32) -> f32 {
    let xd = x as f64;
    // k = round(x·N/ln2) via the shift trick; r = x·N/ln2 - k computed
    // with a fused multiply-add (the fusion is load-bearing for bit
    // parity with libm — see the module docs).
    let kd = INV_LN2_N.mul_add(xd, SHIFT);
    let ki = kd.to_bits();
    let kd = kd - SHIFT;
    let r = INV_LN2_N.mul_add(xd, -kd);
    // s = 2^(k/N) from the table plus the integer part of k folded into
    // the exponent field.
    let s = f64::from_bits(TAB[(ki % N) as usize].wrapping_add(ki << (52 - TABLE_BITS as u64)));
    // 2^r ≈ C0·r³ + C1·r² + C2·r + 1 with glibc's evaluation order.
    let z = C[0].mul_add(r, C[1]);
    let r2 = r * r;
    let y = C[2].mul_add(r, 1.0);
    let y = z.mul_add(r2, y);
    (y * s) as f32
}

/// `e^x`, bit-identical to `x.exp()` (see module docs for the argument).
#[inline]
pub fn exp_f32(x: f32) -> f32 {
    if in_fast_domain(x) {
        exp_core(x)
    } else {
        x.exp()
    }
}

/// Number of elements exponentiated per batch: wide enough to fill the
/// vector units with the f64 intermediate pipeline, small enough to stay
/// in registers/stack.
pub const EXP_LANES: usize = 16;

/// Replaces every element of `xs` with its exponential, batching the
/// fast path [`EXP_LANES`] at a time so the compiler can vectorize the
/// f64 pipeline. Falls back to element-wise [`exp_f32`] for any batch
/// containing an out-of-domain value. Bit-identical to mapping
/// `f32::exp` over the slice; allocation-free.
pub fn exp_inplace(xs: &mut [f32]) {
    let mut chunks = xs.chunks_exact_mut(EXP_LANES);
    for chunk in chunks.by_ref() {
        if chunk.iter().all(|&v| in_fast_domain(v)) {
            for v in chunk.iter_mut() {
                *v = exp_core(*v);
            }
        } else {
            for v in chunk.iter_mut() {
                *v = exp_f32(*v);
            }
        }
    }
    for v in chunks.into_remainder() {
        *v = exp_f32(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{rng_for, Rng};

    #[test]
    fn matches_libm_on_sampled_inputs() {
        let mut rng = rng_for(0xE4B, 0);
        for case in 0..200_000u64 {
            // Mix of softmax-typical small magnitudes and full-range
            // values, including the overflow/underflow delegation zone.
            let x = match case % 4 {
                0 => (rng.next_f32() - 0.5) * 20.0,
                1 => rng.next_f32() * -90.0,
                2 => (rng.next_f32() - 0.5) * 300.0,
                _ => f32::from_bits(rng.next_u64() as u32),
            };
            let got = exp_f32(x);
            let want = x.exp();
            assert!(
                got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                "x={x:?} ({:#x}): port {:#x} libm {:#x}",
                x.to_bits(),
                got.to_bits(),
                want.to_bits()
            );
        }
    }

    #[test]
    fn specials_delegate_to_libm() {
        for x in [
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MAX,
            f32::MIN,
            88.0,
            -88.0,
            104.0,
            -104.0,
            0.0,
            -0.0,
        ] {
            assert_eq!(exp_f32(x).to_bits(), x.exp().to_bits(), "x={x}");
        }
        assert!(exp_f32(f32::NAN).is_nan());
    }

    #[test]
    fn inplace_matches_scalar_including_remainders() {
        let mut rng = rng_for(0xE4B, 1);
        for len in [0usize, 1, 7, 15, 16, 17, 31, 32, 100] {
            let src: Vec<f32> = (0..len)
                .map(|i| {
                    if i == 5 {
                        -200.0 // force the mixed-domain batch path
                    } else {
                        (rng.next_f32() - 0.8) * 30.0
                    }
                })
                .collect();
            let mut got = src.clone();
            exp_inplace(&mut got);
            for (g, s) in got.iter().zip(&src) {
                assert_eq!(g.to_bits(), s.exp().to_bits(), "len {len}");
            }
        }
    }

    /// Exhaustive sweep over every f32 bit pattern (~4.3 billion cases,
    /// tens of seconds in release). Run with
    /// `cargo test -p fedl-linalg --release -- --ignored exhaustive`.
    #[test]
    #[ignore = "exhaustive 2^32 sweep; run explicitly in release"]
    fn exhaustive_bit_parity_with_libm() {
        for bits in 0..=u32::MAX {
            let x = f32::from_bits(bits);
            let got = exp_f32(x);
            let want = x.exp();
            if got.to_bits() != want.to_bits() && !(got.is_nan() && want.is_nan()) {
                panic!("mismatch at {bits:#x} (x={x:?})");
            }
        }
    }
}
