//! `f64` vector helpers for the optimization side of FedL.
//!
//! The online decision problem (paper eq. (8)) lives in at most `K + 1`
//! dimensions (one selection fraction per available client plus the
//! iteration-control variable ρ), so it gets plain `Vec<f64>` arithmetic
//! in double precision rather than the `f32` [`crate::Matrix`] machinery.

/// `out = a + alpha * b` element-wise; panics on length mismatch.
pub fn axpy(out: &mut [f64], alpha: f64, b: &[f64]) {
    assert_eq!(out.len(), b.len(), "axpy length mismatch");
    for (o, &bv) in out.iter_mut().zip(b) {
        *o += alpha * bv;
    }
}

/// Inner product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist_sq length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance.
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    dist_sq(a, b).sqrt()
}

/// Element-wise `max(v, 0)` in place — the `[·]⁺` operator used by the
/// dual ascent step (paper eq. (9)) and the dynamic-fit definition.
pub fn relu_inplace(v: &mut [f64]) {
    for x in v.iter_mut() {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

/// Sum of elements.
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// `true` when every element is finite.
pub fn all_finite(a: &[f64]) -> bool {
    a.iter().all(|v| v.is_finite())
}

/// Clamps each element into `[lo[i], hi[i]]` in place (box projection).
pub fn clamp_box(v: &mut [f64], lo: &[f64], hi: &[f64]) {
    assert_eq!(v.len(), lo.len(), "clamp_box lo length mismatch");
    assert_eq!(v.len(), hi.len(), "clamp_box hi length mismatch");
    for ((x, &l), &h) in v.iter_mut().zip(lo).zip(hi) {
        *x = x.clamp(l, h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq_f64;

    #[test]
    fn axpy_dot_norm() {
        let mut a = vec![1.0, 2.0];
        axpy(&mut a, 2.0, &[3.0, 4.0]);
        assert_eq!(a, vec![7.0, 10.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!(approx_eq_f64(norm(&[3.0, 4.0]), 5.0, 1e-12));
    }

    #[test]
    fn distances() {
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert!(approx_eq_f64(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0, 1e-12));
    }

    #[test]
    fn relu_zeroes_negatives_only() {
        let mut v = vec![-1.0, 0.0, 2.5];
        relu_inplace(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 2.5]);
    }

    #[test]
    fn clamp_box_respects_bounds() {
        let mut v = vec![-1.0, 0.5, 2.0];
        clamp_box(&mut v, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn finiteness_check() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }
}
