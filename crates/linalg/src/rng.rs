//! Self-contained deterministic random-number substrate.
//!
//! Every stochastic component in the reproduction (dataset synthesis,
//! client placement, availability draws, SGD batching, RDCS rounding)
//! derives its RNG from one experiment seed through [`derive_seed`], so a
//! whole figure is reproducible from a single `u64` while streams for
//! different purposes stay statistically independent.
//!
//! The module is a from-scratch replacement for the `rand`/`rand_distr`
//! crates so the workspace builds offline with zero registry
//! dependencies. It provides:
//!
//! * [`Xoshiro256pp`] — the xoshiro256++ generator (Blackman & Vigna),
//!   seeded through a SplitMix64 expansion of a single `u64`;
//! * the [`Rng`] trait — `next_u64`, [`Rng::gen`], [`Rng::gen_range`],
//!   [`Rng::gen_bool`] — plus [`SliceRandom`] for `shuffle`/`choose`;
//! * [`Distribution`] samplers: [`Normal`] (Box–Muller), [`Poisson`]
//!   (Knuth product method with splitting for large rates),
//!   [`Bernoulli`], [`Exponential`] (inversion), and [`Gamma`]
//!   (Marsaglia–Tsang squeeze) for Dirichlet partitioning.
//!
//! Determinism contract: for a fixed crate version, a fixed seed produces
//! the same stream on every platform (only integer ops and IEEE-754
//! double arithmetic are used). The `derive_seed` mix is pinned by a
//! regression test and must never change — it is the root of every
//! experiment's reproducibility story.

use crate::Matrix;

// ---------------------------------------------------------------------------
// Seed derivation
// ---------------------------------------------------------------------------

/// Derives an independent child seed from `(root, label)`.
///
/// Uses the SplitMix64 finalizer, which is a bijective avalanche mix — two
/// distinct `(root, label)` pairs practically never collide and nearby
/// labels produce unrelated streams.
#[inline]
pub fn derive_seed(root: u64, label: u64) -> u64 {
    let mut z = root ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One step of the SplitMix64 sequence generator (state advance + mix),
/// used to expand a single `u64` into the 256-bit xoshiro state.
#[inline]
fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`Xoshiro256pp`] seeded from `(root, label)` via [`derive_seed`].
pub fn rng_for(root: u64, label: u64) -> Xoshiro256pp {
    Xoshiro256pp::seed_from_u64(derive_seed(root, label))
}

// ---------------------------------------------------------------------------
// Generator core
// ---------------------------------------------------------------------------

/// The xoshiro256++ pseudo-random generator (Blackman & Vigna, 2019).
///
/// 256 bits of state, period `2^256 − 1`, passes BigCrush, and needs only
/// xor/shift/rotate/add — fast everywhere and trivially portable. This is
/// the single generator used by the whole workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the 256-bit state by running SplitMix64 from `seed`, the
    /// expansion the xoshiro authors recommend (never yields the
    /// all-zero state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64_next(&mut sm),
            splitmix64_next(&mut sm),
            splitmix64_next(&mut sm),
            splitmix64_next(&mut sm),
        ];
        Self { s }
    }

    /// Rebuilds a generator from a [`Xoshiro256pp::state`] export.
    ///
    /// The caller is responsible for passing a state that was produced
    /// by `state()` (any non-zero state is technically valid; the
    /// all-zero state is a fixed point and never occurs in exported
    /// states).
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }

    /// Exports the full 256-bit generator state, for checkpointing.
    /// `from_state(rng.state())` yields a generator that continues the
    /// exact same output stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Next raw 64-bit output (the `++` scrambler).
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

// ---------------------------------------------------------------------------
// The Rng trait
// ---------------------------------------------------------------------------

/// Minimal random-generator interface: one required method
/// (`next_u64`), everything else derived from it.
pub trait Rng {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 random mantissa bits.
    #[inline]
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// A uniformly random value of a primitive type (`f32`, `f64` in
    /// `[0, 1)`; `bool` fair coin; full-range unsigned integers).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::gen_from(self)
    }

    /// A uniform draw from `range` (`a..b` or `a..=b`; integer and float
    /// endpoints).
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`Rng::gen`] can produce uniformly without extra parameters.
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn gen_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn gen_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}
impl Standard for f32 {
    #[inline]
    fn gen_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f32()
    }
}
impl Standard for bool {
    #[inline]
    fn gen_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u64 {
    #[inline]
    fn gen_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    #[inline]
    fn gen_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for usize {
    #[inline]
    fn gen_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

/// Types that support uniform sampling from a half-open or inclusive
/// interval.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Uniform `u64` in `[0, span)` via the fixed-point multiply method
/// (Lemire). The residual bias is at most `span / 2^64` — irrelevant for
/// the simulation-scale spans used here.
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u64;
                low.wrapping_add(uniform_below(rng, span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty range {low}..={high}");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(usize, u64, u32, i64, i32);

macro_rules! impl_sample_uniform_float {
    ($t:ty, $draw:ident) => {
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range {low}..{high}");
                let u = rng.$draw();
                low + u * (high - low)
            }
            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty range {low}..={high}");
                let u = rng.$draw();
                low + u * (high - low)
            }
        }
    };
}
impl_sample_uniform_float!(f64, next_f64);
impl_sample_uniform_float!(f32, next_f32);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

// ---------------------------------------------------------------------------
// Slice helpers
// ---------------------------------------------------------------------------

/// Shuffling and random element selection on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, or `None` when empty.
    fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}

// ---------------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------------

/// A parameterized distribution that can be sampled with any [`Rng`].
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Gaussian `N(mean, std²)` sampled by the Box–Muller transform.
///
/// Both variates of each Box–Muller pair are consumed (the second is
/// cached), so a stream of draws costs one `sin`/`cos` pair per two
/// samples. The cache lives in a `Cell` so sampling needs only `&self`,
/// matching the [`Distribution`] contract.
#[derive(Debug, Clone)]
pub struct Normal {
    mean: f64,
    std: f64,
    spare: core::cell::Cell<Option<f64>>,
}

impl Normal {
    /// `N(mean, std²)`.
    ///
    /// # Panics
    /// Panics if `std` is negative or either parameter is non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(
            mean.is_finite() && std.is_finite() && std >= 0.0,
            "Normal requires finite mean and non-negative std (got {mean}, {std})"
        );
        Self { mean, std, spare: core::cell::Cell::new(None) }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// One standard-normal variate.
    fn sample_standard<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller on (0,1] × [0,1) to avoid ln(0).
        let u1 = 1.0 - rng.next_f64();
        let u2 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        self.spare.set(Some(r * theta.sin()));
        r * theta.cos()
    }
}

impl Distribution<f64> for Normal {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * self.sample_standard(rng)
    }
}

/// Poisson with rate `λ`, sampled by Knuth's product-of-uniforms method.
///
/// For `λ > 30` the draw is split into independent Poisson components
/// (`Poisson(a + b) = Poisson(a) + Poisson(b)`) so `exp(-λ)` never
/// underflows; total work stays `O(λ)`, which is fine at the arrival
/// rates the simulator uses.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

/// Chunk size for splitting large Poisson rates; `exp(-30)` is
/// comfortably inside `f64` range.
const POISSON_CHUNK: f64 = 30.0;

impl Poisson {
    /// Poisson with the given positive, finite rate.
    ///
    /// # Panics
    /// Panics if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0, "Poisson requires λ > 0 (got {lambda})");
        Self { lambda }
    }

    fn sample_chunk<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
        let limit = (-lambda).exp();
        let mut product = rng.next_f64();
        let mut count = 0u64;
        while product > limit {
            product *= rng.next_f64();
            count += 1;
        }
        count
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut remaining = self.lambda;
        let mut total = 0u64;
        while remaining > POISSON_CHUNK {
            total += Self::sample_chunk(POISSON_CHUNK, rng);
            remaining -= POISSON_CHUNK;
        }
        total += Self::sample_chunk(remaining, rng);
        total as f64
    }
}

/// Bernoulli with success probability `p`.
#[derive(Debug, Clone, Copy)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Bernoulli(`p`) with `p ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]` or NaN.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "Bernoulli requires p in [0,1] (got {p})");
        Self { p }
    }
}

impl Distribution<bool> for Bernoulli {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_f64() < self.p
    }
}

/// Exponential with rate `λ` (mean `1/λ`), sampled by inversion.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Exponential with the given positive rate.
    ///
    /// # Panics
    /// Panics if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0, "Exponential requires λ > 0 (got {lambda})");
        Self { lambda }
    }
}

impl Distribution<f64> for Exponential {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1 − U ∈ (0, 1] keeps ln away from zero.
        -(1.0 - rng.next_f64()).ln() / self.lambda
    }
}

/// Gamma with shape `k` and scale `θ`, sampled by the Marsaglia–Tsang
/// squeeze method (with the `U^{1/k}` boost for shape below one).
///
/// Used to draw Dirichlet weights for the non-IID partitioner: a
/// normalized vector of `Gamma(α, 1)` draws is `Dirichlet(α)`.
#[derive(Debug, Clone, Copy)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Gamma with positive shape and scale.
    ///
    /// # Panics
    /// Panics if either parameter is not finite and positive.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0,
            "Gamma requires positive shape and scale (got {shape}, {scale})"
        );
        Self { shape, scale }
    }

    /// Marsaglia–Tsang for shape ≥ 1.
    fn sample_large<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let normal = Normal::standard();
        loop {
            let x = normal.sample(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = 1.0 - rng.next_f64(); // (0, 1]
                                          // Squeeze, then full acceptance check.
            if u < 1.0 - 0.0331 * (x * x) * (x * x) {
                return d * v3;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3;
            }
        }
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let draw = if self.shape >= 1.0 {
            Self::sample_large(self.shape, rng)
        } else {
            // Gamma(k) = Gamma(k + 1) · U^{1/k} for k < 1.
            let boost = (1.0 - rng.next_f64()).powf(1.0 / self.shape);
            Self::sample_large(self.shape + 1.0, rng) * boost
        };
        draw * self.scale
    }
}

// ---------------------------------------------------------------------------
// Matrix constructors
// ---------------------------------------------------------------------------

impl Matrix {
    /// Matrix with i.i.d. `U(-scale, scale)` entries.
    pub fn uniform(rows: usize, cols: usize, scale: f32, rng: &mut impl Rng) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
    }

    /// Matrix with i.i.d. `N(0, std²)` entries (Box–Muller).
    pub fn gaussian(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Matrix {
        let normal = Normal::new(0.0, std as f64);
        Matrix::from_fn(rows, cols, |_, _| normal.sample(rng) as f32)
    }

    /// Glorot/Xavier-uniform initialization for a `fan_in x fan_out` layer.
    ///
    /// Scale `sqrt(6 / (fan_in + fan_out))` keeps activation variance flat
    /// across layers, which matters because the local DANE solves start
    /// from the broadcast global model every iteration.
    pub fn glorot(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
        let scale = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Matrix::uniform(fan_in, fan_out, scale, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_label_sensitive() {
        assert_eq!(derive_seed(42, 1), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
    }

    /// Pins `derive_seed` outputs so an RNG refactor can never silently
    /// reshuffle every experiment stream in the repo.
    #[test]
    fn derive_seed_outputs_are_pinned() {
        assert_eq!(derive_seed(0, 0), 0);
        assert_eq!(derive_seed(42, 1), 0xBDD7_3226_2FEB_6E95);
        assert_eq!(derive_seed(0xFED1, 100), 0xA37B_D992_E6BB_3A39);
        assert_eq!(derive_seed(u64::MAX, u64::MAX), 0xE4D9_7177_1B65_2C20);
    }

    #[test]
    fn rng_streams_reproduce() {
        let a: Vec<u32> = (0..4).map(|_| rng_for(7, 3).gen::<u32>()).collect();
        // Same seed/label -> same first draw each time.
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        let mut r1 = rng_for(7, 3);
        let mut r2 = rng_for(7, 3);
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the all-explicit state
        // {1, 2, 3, 4}, cross-checked against the public reference
        // implementation (prng.di.unimi.it).
        let mut rng = Xoshiro256pp { s: [1, 2, 3, 4] };
        let got: Vec<u64> = (0..4).map(|_| rng.next_raw()).collect();
        assert_eq!(got, vec![41943041, 58720359, 3588806011781223, 3591011842654386]);
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut rng = rng_for(0xC0FFEE, 42);
        for _ in 0..100 {
            rng.next_raw();
        }
        let saved = rng.state();
        let tail: Vec<u64> = (0..32).map(|_| rng.next_raw()).collect();
        let mut restored = Xoshiro256pp::from_state(saved);
        let resumed: Vec<u64> = (0..32).map(|_| restored.next_raw()).collect();
        assert_eq!(tail, resumed, "restored generator must continue the exact stream");
        assert_eq!(rng, restored, "both generators must land in the same state");
    }

    #[test]
    fn state_export_is_pinned() {
        // The exported state IS the raw xoshiro256++ state, so the
        // checkpoint format inherits the reference semantics: exporting
        // {1,2,3,4}, stepping once, and re-exporting must match the
        // reference state-transition exactly.
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        assert_eq!(rng.state(), [1, 2, 3, 4]);
        assert_eq!(rng.next_raw(), 41943041);
        // One transition of the reference update applied to {1,2,3,4}.
        assert_eq!(rng.state(), [7, 0, 262146, 211106232532992]);
        // And a seeded generator exports the SplitMix64 expansion.
        let seeded = Xoshiro256pp::seed_from_u64(0);
        assert_eq!(
            seeded.state(),
            [
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F,
                0xF88B_B8A8_724C_81EC,
            ],
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rng_for(11, 0);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let g = rng.gen_range(1.0..=2.0f64);
            assert!((1.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_integer_mean_is_central() {
        let mut rng = rng_for(12, 0);
        let n = 40_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0..10usize) as f64).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let mut rng = rng_for(1, 1);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rng_for(13, 0);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // A 50-element shuffle virtually never returns the identity.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = rng_for(14, 0);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn uniform_respects_scale() {
        let mut rng = rng_for(1, 1);
        let m = Matrix::uniform(10, 10, 0.5, &mut rng);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.5));
    }

    #[test]
    fn gaussian_has_reasonable_moments() {
        let mut rng = rng_for(1, 2);
        let m = Matrix::gaussian(100, 100, 2.0, &mut rng);
        let mean = m.mean();
        let var = m.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>()
            / (m.len() - 1) as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn glorot_scale_shrinks_with_fan() {
        let mut rng = rng_for(1, 3);
        let wide = Matrix::glorot(1000, 1000, &mut rng);
        let bound = (6.0f32 / 2000.0).sqrt();
        assert!(wide.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn normal_moments_match_parameters() {
        let mut rng = rng_for(2, 1);
        let dist = Normal::new(3.0, 1.5);
        let n = 60_000;
        let draws: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 2.25).abs() < 0.05, "var {var}");
    }

    #[test]
    fn poisson_moments_match_rate_small_and_large() {
        let mut rng = rng_for(2, 2);
        for &lambda in &[0.5, 4.0, 75.0] {
            let dist = Poisson::new(lambda);
            let n = 40_000;
            let draws: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
            let mean = draws.iter().sum::<f64>() / n as f64;
            let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (n - 1) as f64;
            // Poisson: mean = var = λ.
            let tol = 4.0 * (lambda / n as f64).sqrt() + 0.01;
            assert!((mean - lambda).abs() < tol, "λ={lambda}: mean {mean}");
            assert!((var - lambda).abs() < 20.0 * tol, "λ={lambda}: var {var}");
            assert!(draws.iter().all(|&d| d >= 0.0 && d.fract() == 0.0));
        }
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = rng_for(2, 3);
        let dist = Exponential::new(2.0);
        let n = 60_000;
        let mean = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut rng = rng_for(2, 4);
        let dist = Bernoulli::new(0.3);
        let n = 60_000;
        let hits = (0..n).filter(|_| dist.sample(&mut rng)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn gamma_moments_match_parameters() {
        let mut rng = rng_for(2, 5);
        // Gamma(k, θ): mean kθ, variance kθ².
        for &(shape, scale) in &[(0.5, 1.0), (2.0, 3.0), (9.0, 0.5)] {
            let dist = Gamma::new(shape, scale);
            let n = 60_000;
            let draws: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
            let mean = draws.iter().sum::<f64>() / n as f64;
            let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (n - 1) as f64;
            let want_mean = shape * scale;
            let want_var = shape * scale * scale;
            assert!((mean - want_mean).abs() < 0.05 * want_mean.max(1.0), "mean {mean}");
            assert!((var - want_var).abs() < 0.15 * want_var.max(1.0), "var {var}");
            assert!(draws.iter().all(|&d| d > 0.0));
        }
    }
}
