//! Deterministic seeding utilities.
//!
//! Every stochastic component in the reproduction (dataset synthesis,
//! client placement, availability draws, SGD batching, RDCS rounding)
//! derives its RNG from one experiment seed through [`derive_seed`], so a
//! whole figure is reproducible from a single `u64` while streams for
//! different purposes stay statistically independent.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Matrix;

/// Derives an independent child seed from `(root, label)`.
///
/// Uses the SplitMix64 finalizer, which is a bijective avalanche mix — two
/// distinct `(root, label)` pairs practically never collide and nearby
/// labels produce unrelated streams.
#[inline]
pub fn derive_seed(root: u64, label: u64) -> u64 {
    let mut z = root ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A `StdRng` seeded from `(root, label)` via [`derive_seed`].
pub fn rng_for(root: u64, label: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(root, label))
}

impl Matrix {
    /// Matrix with i.i.d. `U(-scale, scale)` entries.
    pub fn uniform(rows: usize, cols: usize, scale: f32, rng: &mut impl Rng) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
    }

    /// Matrix with i.i.d. `N(0, std²)` entries (Box–Muller via rand_distr).
    pub fn gaussian(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Matrix {
        use rand_distr::{Distribution, Normal};
        let normal = Normal::new(0.0f32, std).expect("std must be finite and non-negative");
        Matrix::from_fn(rows, cols, |_, _| normal.sample(rng))
    }

    /// Glorot/Xavier-uniform initialization for a `fan_in x fan_out` layer.
    ///
    /// Scale `sqrt(6 / (fan_in + fan_out))` keeps activation variance flat
    /// across layers, which matters because the local DANE solves start
    /// from the broadcast global model every iteration.
    pub fn glorot(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
        let scale = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Matrix::uniform(fan_in, fan_out, scale, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_label_sensitive() {
        assert_eq!(derive_seed(42, 1), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
    }

    #[test]
    fn rng_streams_reproduce() {
        let a: Vec<u32> = (0..4).map(|_| rng_for(7, 3).gen()).collect();
        // Same seed/label -> same first draw each time.
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        let mut r1 = rng_for(7, 3);
        let mut r2 = rng_for(7, 3);
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn uniform_respects_scale() {
        let mut rng = rng_for(1, 1);
        let m = Matrix::uniform(10, 10, 0.5, &mut rng);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.5));
    }

    #[test]
    fn gaussian_has_reasonable_moments() {
        let mut rng = rng_for(1, 2);
        let m = Matrix::gaussian(100, 100, 2.0, &mut rng);
        let mean = m.mean();
        let var = m.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>()
            / (m.len() - 1) as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn glorot_scale_shrinks_with_fan() {
        let mut rng = rng_for(1, 3);
        let wide = Matrix::glorot(1000, 1000, &mut rng);
        let bound = (6.0f32 / 2000.0).sqrt();
        assert!(wide.as_slice().iter().all(|v| v.abs() <= bound));
    }
}
