//! Cache-blocked, SIMD-friendly GEMM kernels (docs/PERF.md).
//!
//! All three products (`A·B`, `Aᵀ·B`, `A·Bᵀ`) share one blocked driver:
//! the k dimension is split into [`KC`]-deep slabs, `B` is packed once
//! per slab into [`NR`]-wide column panels, and the output rows are
//! split into [`MC`]-high blocks whose `A` strips are packed into
//! [`MR`]-high row panels, feeding an `MR×NR` register micro-kernel.
//! Packing turns every inner-loop access into a unit-stride streaming
//! read, which is what lets the compiler vectorize the micro-kernel.
//!
//! Determinism: each output element is accumulated strictly in
//! ascending-`k` order — the micro-kernel seeds its accumulator tile
//! from `C` and the `KC` slabs are walked in order — so the
//! floating-point association is a pure function of the operand shapes.
//! Parallelism only ever distributes whole [`MC`] row blocks (disjoint
//! output rows, no cross-task reduction), so the result is bit-identical
//! for any thread count, any `FEDL_THREADS` setting, and across
//! repeated calls; `tests/gemm_parity.rs` pins this. The ascending-`k`
//! fold also matches the pre-blocking kernels bit-for-bit on finite
//! inputs, so historical results stay valid.
//!
//! Packing buffers are thread-local and reused across calls: a
//! steady-state product performs zero heap allocation once each
//! thread's buffers have grown to the workload's high-water mark.

use std::cell::RefCell;
use std::sync::OnceLock;

use crate::par;
use crate::pool;
use crate::Matrix;

/// Micro-kernel tile height: rows of `C` updated per register tile.
const MR: usize = 8;
/// Micro-kernel tile width: columns of `C` updated per register tile.
const NR: usize = 16;
/// k-depth of one packed slab (`B` panel reuse distance).
const KC: usize = 256;
/// Rows per parallel work unit; a multiple of [`MR`]. One `A` block is
/// `MC×KC×4 B = 64 KiB`, sized to live in L2 while its packed `B` slab
/// streams through.
const MC: usize = 64;

/// Default sequential/parallel cutover in multiply-adds.
///
/// Derivation (docs/PERF.md has the full procedure): dispatching a
/// batch through the worker pool costs on the order of 10 µs, and one
/// core sustains roughly 10 Gflop/s in the blocked kernel, i.e. ~100 k
/// multiply-adds per 10 µs. Requiring the kernel body to outweigh the
/// dispatch by ~2.5× gives 256 k flops (≈ a 64³ product). Override
/// with `FEDL_GEMM_PAR_FLOPS` (read once per process) when tuning for
/// different hardware.
const DEFAULT_PAR_THRESHOLD_FLOPS: usize = 256 * 1024;

/// The active sequential/parallel cutover in multiply-adds:
/// `FEDL_GEMM_PAR_FLOPS` when set to a positive integer, otherwise the
/// built-in default (256 Ki flops). Cached on first use.
pub fn gemm_par_threshold_flops() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("FEDL_GEMM_PAR_FLOPS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_PAR_THRESHOLD_FLOPS)
    })
}

thread_local! {
    /// Per-thread packed `A` block (`MC×KC` high-water mark).
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread packed `B` slab (`KC×n` high-water mark).
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Whether an operand participates transposed (without materializing).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Orient {
    /// Element `(i, k)` lives at `data[i * ld + k]`.
    Normal,
    /// Element `(i, k)` lives at `data[k * ld + i]`.
    Transposed,
}

/// Packs the `kc`-deep, `mrows`-high block of `A` starting at
/// `(i0, k0)` into `MR`-high panels: panel `ip`, depth `kk` holds the
/// `MR` values `A[i0 + ip·MR .. ][k0 + kk]`, zero-padded past the last
/// row. Padded lanes only ever feed discarded accumulator rows.
#[allow(clippy::too_many_arguments)] // blocking geometry is the signature
fn pack_a(
    a: &[f32],
    lda: usize,
    orient: Orient,
    i0: usize,
    mrows: usize,
    k0: usize,
    kc: usize,
    buf: &mut Vec<f32>,
) {
    let panels = mrows.div_ceil(MR);
    buf.clear();
    buf.resize(panels * kc * MR, 0.0);
    for ip in 0..panels {
        let rows = MR.min(mrows - ip * MR);
        let panel = &mut buf[ip * kc * MR..(ip + 1) * kc * MR];
        match orient {
            Orient::Normal => {
                for ir in 0..rows {
                    let src = &a[(i0 + ip * MR + ir) * lda + k0..][..kc];
                    for (kk, &v) in src.iter().enumerate() {
                        panel[kk * MR + ir] = v;
                    }
                }
            }
            Orient::Transposed => {
                for kk in 0..kc {
                    let src = &a[(k0 + kk) * lda + i0 + ip * MR..][..rows];
                    panel[kk * MR..kk * MR + rows].copy_from_slice(src);
                }
            }
        }
    }
}

/// Packs the `kc`-deep slab of `B` starting at row `k0` into `NR`-wide
/// column panels: panel `jp`, depth `kk` holds the `NR` values
/// `B[k0 + kk][jp·NR ..]`, zero-padded past the last column.
fn pack_b(
    b: &[f32],
    ldb: usize,
    orient: Orient,
    k0: usize,
    kc: usize,
    n: usize,
    buf: &mut Vec<f32>,
) {
    let panels = n.div_ceil(NR);
    buf.clear();
    buf.resize(panels * kc * NR, 0.0);
    for jp in 0..panels {
        let cols = NR.min(n - jp * NR);
        let panel = &mut buf[jp * kc * NR..(jp + 1) * kc * NR];
        match orient {
            Orient::Normal => {
                for kk in 0..kc {
                    let src = &b[(k0 + kk) * ldb + jp * NR..][..cols];
                    panel[kk * NR..kk * NR + cols].copy_from_slice(src);
                }
            }
            Orient::Transposed => {
                for jr in 0..cols {
                    let src = &b[(jp * NR + jr) * ldb + k0..][..kc];
                    for (kk, &v) in src.iter().enumerate() {
                        panel[kk * NR + jr] = v;
                    }
                }
            }
        }
    }
}

// The unrolled micro-kernel below spells out one accumulator row per
// MR line; keep the constant honest.
const _: () = assert!(MR == 8, "micro_kernel is unrolled for MR == 8");

/// One fused row update `acc + a·b` over an `NR`-wide lane group.
/// By-value arrays keep the accumulator rows SSA values, which is what
/// lets the compiler pin each row to a vector register instead of
/// round-tripping a stack slot per `k` step.
#[inline(always)]
fn fma_row(mut acc: [f32; NR], a: f32, b: &[f32; NR]) -> [f32; NR] {
    let mut j = 0;
    while j < NR {
        acc[j] += a * b[j];
        j += 1;
    }
    acc
}

/// The register micro-kernel: folds one `kc`-deep `MR×NR` tile into
/// `acc` in ascending-`k` order. Both panels are read at unit stride;
/// the fixed-size row updates unroll and vectorize.
#[inline(always)]
fn micro_kernel(a_panel: &[f32], b_panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    let [mut r0, mut r1, mut r2, mut r3, mut r4, mut r5, mut r6, mut r7] = *acc;
    for (av, bv) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
        let b: &[f32; NR] = bv.try_into().expect("NR-wide chunk");
        r0 = fma_row(r0, av[0], b);
        r1 = fma_row(r1, av[1], b);
        r2 = fma_row(r2, av[2], b);
        r3 = fma_row(r3, av[3], b);
        r4 = fma_row(r4, av[4], b);
        r5 = fma_row(r5, av[5], b);
        r6 = fma_row(r6, av[6], b);
        r7 = fma_row(r7, av[7], b);
    }
    *acc = [r0, r1, r2, r3, r4, r5, r6, r7];
}

/// Computes one `MC`-block's contribution for one `KC` slab:
/// `C[rows i0..i0+mrows] += A_slab · B_slab`, with the accumulator tile
/// seeded from `C` so the per-element fold stays ascending in `k`
/// across slabs. `c_block` is the block's `mrows × n` row window.
#[allow(clippy::too_many_arguments)] // blocking geometry is the signature
fn compute_block(
    a: &[f32],
    lda: usize,
    orient_a: Orient,
    i0: usize,
    mrows: usize,
    k0: usize,
    kc: usize,
    packed_b: &[f32],
    n: usize,
    c_block: &mut [f32],
) {
    PACK_A.with(|cell| {
        let abuf = &mut *cell.borrow_mut();
        pack_a(a, lda, orient_a, i0, mrows, k0, kc, abuf);
        let mpanels = mrows.div_ceil(MR);
        for (jp, b_panel) in packed_b.chunks_exact(kc * NR).enumerate() {
            let j0 = jp * NR;
            let cols = NR.min(n - j0);
            for ip in 0..mpanels {
                let a_panel = &abuf[ip * kc * MR..(ip + 1) * kc * MR];
                let r0 = ip * MR;
                let rows = MR.min(mrows - r0);
                let mut acc = [[0.0f32; NR]; MR];
                for (i, accrow) in acc.iter_mut().enumerate().take(rows) {
                    let c_row = &c_block[(r0 + i) * n + j0..][..cols];
                    accrow[..cols].copy_from_slice(c_row);
                }
                micro_kernel(a_panel, b_panel, &mut acc);
                for (i, accrow) in acc.iter().enumerate().take(rows) {
                    let c_row = &mut c_block[(r0 + i) * n + j0..][..cols];
                    c_row.copy_from_slice(&accrow[..cols]);
                }
            }
        }
    });
}

/// The blocked driver shared by all three products. `out` must be the
/// zero-initialized (or seed-value) `m × n` destination; `threads`
/// bounds how many contiguous groups the `MC` row blocks are split
/// into (the grouping never affects bits — see the module docs).
#[allow(clippy::too_many_arguments)] // blocking geometry is the signature
fn gemm_blocked(
    a: &[f32],
    lda: usize,
    orient_a: Orient,
    b: &[f32],
    ldb: usize,
    orient_b: Orient,
    m: usize,
    kdim: usize,
    n: usize,
    out: &mut [f32],
    threads: usize,
) {
    if m == 0 || n == 0 || kdim == 0 {
        return;
    }
    debug_assert_eq!(out.len(), m * n);
    let nblocks = m.div_ceil(MC);
    let teams =
        if m * kdim * n >= gemm_par_threshold_flops() { threads.min(nblocks).max(1) } else { 1 };
    let mut k0 = 0;
    while k0 < kdim {
        let kc = KC.min(kdim - k0);
        PACK_B.with(|cell| {
            let bbuf = &mut *cell.borrow_mut();
            pack_b(b, ldb, orient_b, k0, kc, n, bbuf);
            if teams <= 1 {
                for blk in 0..nblocks {
                    let i0 = blk * MC;
                    let mrows = MC.min(m - i0);
                    let c_block = &mut out[i0 * n..(i0 + mrows) * n];
                    compute_block(a, lda, orient_a, i0, mrows, k0, kc, bbuf, n, c_block);
                }
            } else {
                let ranges = par::split_ranges(nblocks, teams);
                let bbuf = &*bbuf;
                let mut rest = &mut *out;
                let mut consumed_rows = 0usize;
                let mut tasks: Vec<pool::Task<'_>> = Vec::with_capacity(ranges.len());
                for range in ranges {
                    let first_row = range.start * MC;
                    let last_row = (range.end * MC).min(m);
                    debug_assert_eq!(consumed_rows, first_row);
                    let (mine, tail) = rest.split_at_mut((last_row - first_row) * n);
                    rest = tail;
                    consumed_rows = last_row;
                    tasks.push(Box::new(move || {
                        for blk in range {
                            let i0 = blk * MC;
                            let mrows = MC.min(m - i0);
                            let local = (i0 - first_row) * n;
                            let c_block = &mut mine[local..local + mrows * n];
                            compute_block(a, lda, orient_a, i0, mrows, k0, kc, bbuf, n, c_block);
                        }
                    }));
                }
                pool::run_batch(tasks);
            }
        });
        k0 += kc;
    }
}

impl Matrix {
    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul`] into a caller-owned destination, reusing its
    /// storage (zero allocation once `out`'s capacity has grown to
    /// `self.rows() * rhs.cols()`).
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols(),
            rhs.rows(),
            "matmul shape mismatch: {:?} * {:?}",
            self.shape(),
            rhs.shape()
        );
        out.resize_to(self.rows(), rhs.cols());
        gemm_blocked(
            self.as_slice(),
            self.cols().max(1),
            Orient::Normal,
            rhs.as_slice(),
            rhs.cols().max(1),
            Orient::Normal,
            self.rows(),
            self.cols(),
            rhs.cols(),
            out.as_mut_slice(),
            par::max_threads(),
        );
    }

    /// `self * rhs` computed with an explicit row-block grouping width.
    ///
    /// Exists so the thread-count bit-parity suite can exercise the
    /// exact task partitions a `FEDL_THREADS=n` run would produce
    /// without re-launching the process; production code should call
    /// [`Matrix::matmul`].
    #[doc(hidden)]
    pub fn matmul_with_threads(&self, rhs: &Matrix, threads: usize) -> Matrix {
        assert_eq!(
            self.cols(),
            rhs.rows(),
            "matmul shape mismatch: {:?} * {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows(), rhs.cols());
        gemm_blocked(
            self.as_slice(),
            self.cols().max(1),
            Orient::Normal,
            rhs.as_slice(),
            rhs.cols().max(1),
            Orient::Normal,
            self.rows(),
            self.cols(),
            rhs.cols(),
            out.as_mut_slice(),
            threads.max(1),
        );
        out
    }

    /// `selfᵀ * rhs` without materializing the transpose.
    ///
    /// This is the shape that appears in backprop (`activationsᵀ × delta`),
    /// where `self` and `rhs` share the batch dimension as their rows.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.t_matmul_into(rhs, &mut out);
        out
    }

    /// [`Matrix::t_matmul`] into a caller-owned destination.
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn t_matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows(),
            rhs.rows(),
            "t_matmul batch mismatch: {:?}ᵀ * {:?}",
            self.shape(),
            rhs.shape()
        );
        out.resize_to(self.cols(), rhs.cols());
        gemm_blocked(
            self.as_slice(),
            self.cols().max(1),
            Orient::Transposed,
            rhs.as_slice(),
            rhs.cols().max(1),
            Orient::Normal,
            self.cols(),
            self.rows(),
            rhs.cols(),
            out.as_mut_slice(),
            par::max_threads(),
        );
    }

    /// `self * rhsᵀ` without materializing the transpose.
    ///
    /// Appears in backprop as `delta × weightsᵀ`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_t_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul_t`] into a caller-owned destination.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_t_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols(),
            rhs.cols(),
            "matmul_t inner mismatch: {:?} * {:?}ᵀ",
            self.shape(),
            rhs.shape()
        );
        out.resize_to(self.rows(), rhs.rows());
        gemm_blocked(
            self.as_slice(),
            self.cols().max(1),
            Orient::Normal,
            rhs.as_slice(),
            rhs.cols().max(1),
            Orient::Transposed,
            self.rows(),
            self.cols(),
            rhs.rows(),
            out.as_mut_slice(),
            par::max_threads(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            for c in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(r, k) * b.get(k, c);
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    fn test_mat(rows: usize, cols: usize, seed: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| ((r as f32 * 31.0 + c as f32 * 17.0 + seed) % 7.0) - 3.0)
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = test_mat(3, 4, 1.0);
        let b = test_mat(4, 5, 2.0);
        assert_eq!(a.matmul(&b), naive(&a, &b));
    }

    #[test]
    fn matmul_matches_naive_above_parallel_threshold() {
        let a = test_mat(70, 70, 1.0);
        let b = test_mat(70, 70, 2.0);
        let fast = a.matmul(&b);
        let slow = naive(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!(crate::approx_eq(*x, *y, 1e-3), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_across_blocking_boundaries() {
        // Shapes straddling every blocking parameter: MR/NR tails,
        // multiple MC row blocks, and multiple KC slabs. Values are
        // small integers, so any summation order is exact and the
        // blocked result must equal the naive one bit-for-bit.
        for (m, k, n) in [(1, 1, 1), (7, 9, 5), (8, 256, 8), (65, 300, 17), (130, 520, 11)] {
            let a = test_mat(m, k, 1.0);
            let b = test_mat(k, n, 2.0);
            assert_eq!(a.matmul(&b), naive(&a, &b), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = test_mat(4, 4, 3.0);
        let i = Matrix::identity(4);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = test_mat(6, 3, 1.0);
        let b = test_mat(6, 4, 2.0);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = test_mat(5, 3, 1.0);
        let b = test_mat(7, 3, 2.0);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transposed_variants_match_across_blocking_boundaries() {
        let a = test_mat(300, 70, 1.0);
        let b = test_mat(300, 33, 2.0);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
        let c = test_mat(70, 300, 1.0);
        let d = test_mat(33, 300, 2.0);
        assert_eq!(c.matmul_t(&d), c.matmul(&d.transpose()));
    }

    #[test]
    fn into_variants_reuse_storage_and_match() {
        let a = test_mat(20, 30, 1.0);
        let b = test_mat(30, 10, 2.0);
        let mut out = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // A second product of a different shape reuses the buffer.
        let c = test_mat(5, 30, 3.0);
        c.matmul_into(&b, &mut out);
        assert_eq!(out, c.matmul(&b));
        let mut t_out = Matrix::zeros(0, 0);
        a.t_matmul_into(&a, &mut t_out);
        assert_eq!(t_out, a.t_matmul(&a));
        let mut tt_out = Matrix::zeros(0, 0);
        a.matmul_t_into(&a, &mut tt_out);
        assert_eq!(tt_out, a.matmul_t(&a));
    }

    #[test]
    fn default_par_threshold_is_active_without_override() {
        if std::env::var("FEDL_GEMM_PAR_FLOPS").is_err() {
            assert_eq!(gemm_par_threshold_flops(), DEFAULT_PAR_THRESHOLD_FLOPS);
        }
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn empty_edge_cases() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        let out = a.matmul(&b);
        assert_eq!(out.shape(), (0, 2));
        let c = Matrix::zeros(2, 0);
        let d = Matrix::zeros(0, 3);
        let out = c.matmul(&d);
        assert_eq!(out.shape(), (2, 3));
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }
}
