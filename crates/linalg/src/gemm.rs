//! Thread-parallel GEMM kernels.
//!
//! The training substrate's hot loop is `batch × weights` products. The
//! kernel here is a classic row-parallel, k-outer "axpy" formulation that
//! vectorizes well: for each output row we accumulate `a[r][k] * b[k][..]`
//! into the row, which walks both `b` and the output contiguously (unit
//! stride), avoiding the column gather of a naive inner-product GEMM.
//! Rows are distributed across the [`crate::par`] scoped thread team
//! above a size threshold; small products stay sequential to avoid
//! fork-join overhead.

use crate::par;
use crate::Matrix;

/// Below this many multiply-adds the parallel dispatch costs more than it
/// saves, so the kernel runs sequentially. Chosen by the `linalg` bench
/// on an 8-core box; correctness does not depend on it.
const PAR_THRESHOLD_FLOPS: usize = 64 * 64 * 64;

#[inline]
fn matmul_row(a_row: &[f32], b: &Matrix, out_row: &mut [f32]) {
    out_row.fill(0.0);
    for (k, &aik) in a_row.iter().enumerate() {
        if aik == 0.0 {
            continue;
        }
        let b_row = b.row(k);
        for (o, &bkj) in out_row.iter_mut().zip(b_row) {
            *o += aik * bkj;
        }
    }
}

impl Matrix {
    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            rhs.rows(),
            "matmul shape mismatch: {:?} * {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows(), rhs.cols());
        let flops = self.rows() * self.cols() * rhs.cols();
        let cols = rhs.cols().max(1);
        if flops >= PAR_THRESHOLD_FLOPS {
            let a_cols = self.cols().max(1);
            par::par_zip_chunks(
                out.as_mut_slice(),
                cols,
                self.as_slice(),
                a_cols,
                |_, out_row, a_row| matmul_row(a_row, rhs, out_row),
            );
        } else {
            for (out_row, a_row) in out
                .as_mut_slice()
                .chunks_exact_mut(cols)
                .zip(self.as_slice().chunks_exact(self.cols().max(1)))
            {
                matmul_row(a_row, rhs, out_row);
            }
        }
        out
    }

    /// `selfᵀ * rhs` without materializing the transpose.
    ///
    /// This is the shape that appears in backprop (`activationsᵀ × delta`),
    /// where `self` and `rhs` share the batch dimension as their rows.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            rhs.rows(),
            "t_matmul batch mismatch: {:?}ᵀ * {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.cols(), rhs.cols());
        // Accumulate outer products row by row of the shared batch axis.
        for (a_row, b_row) in self.row_iter().zip(rhs.row_iter()) {
            for (i, &ai) in a_row.iter().enumerate() {
                if ai == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &bj) in out_row.iter_mut().zip(b_row) {
                    *o += ai * bj;
                }
            }
        }
        out
    }

    /// `self * rhsᵀ` without materializing the transpose.
    ///
    /// Appears in backprop as `delta × weightsᵀ`. Each output element is an
    /// inner product of two contiguous rows, so this needs no gather.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            rhs.cols(),
            "matmul_t inner mismatch: {:?} * {:?}ᵀ",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows(), rhs.rows());
        let flops = self.rows() * self.cols() * rhs.rows();
        let out_cols = rhs.rows().max(1);
        let body = |out_row: &mut [f32], a_row: &[f32]| {
            for (j, b_row) in rhs.row_iter().enumerate() {
                out_row[j] = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
            }
        };
        if flops >= PAR_THRESHOLD_FLOPS {
            par::par_zip_chunks(
                out.as_mut_slice(),
                out_cols,
                self.as_slice(),
                self.cols().max(1),
                |_, out_row, a_row| body(out_row, a_row),
            );
        } else {
            out.as_mut_slice()
                .chunks_exact_mut(out_cols)
                .zip(self.as_slice().chunks_exact(self.cols().max(1)))
                .for_each(|(out_row, a_row)| body(out_row, a_row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            for c in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(r, k) * b.get(k, c);
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    fn test_mat(rows: usize, cols: usize, seed: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| ((r as f32 * 31.0 + c as f32 * 17.0 + seed) % 7.0) - 3.0)
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = test_mat(3, 4, 1.0);
        let b = test_mat(4, 5, 2.0);
        assert_eq!(a.matmul(&b), naive(&a, &b));
    }

    #[test]
    fn matmul_matches_naive_above_parallel_threshold() {
        let a = test_mat(70, 70, 1.0);
        let b = test_mat(70, 70, 2.0);
        let fast = a.matmul(&b);
        let slow = naive(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!(crate::approx_eq(*x, *y, 1e-3), "{x} vs {y}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = test_mat(4, 4, 3.0);
        let i = Matrix::identity(4);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = test_mat(6, 3, 1.0);
        let b = test_mat(6, 4, 2.0);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = test_mat(5, 3, 1.0);
        let b = test_mat(7, 3, 2.0);
        assert_eq!(a.matmul_t(&b), a.matmul(&b.transpose()));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn empty_edge_cases() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        let out = a.matmul(&b);
        assert_eq!(out.shape(), (0, 2));
    }
}
