//! Dense linear algebra and zero-dependency substrate for the FedL
//! reproduction (paper §5.1 "local training" compute model and every
//! stochastic component of §6's experiment setup sit on this crate).
//!
//! The federated-learning training loop in the paper runs real gradient
//! descent on per-client datasets, so the reproduction needs a small but
//! fast dense-matrix layer. This crate provides:
//!
//! * [`Matrix`] — a row-major `f32` matrix with thread-parallel GEMM,
//!   element-wise kernels, and row/column reductions, sized for the
//!   batch-times-weights products that dominate model training.
//! * [`dvec`] — `f64` vector helpers used by the convex-optimization side
//!   (the online decision problem is tiny but needs double precision).
//! * [`rng`] — a from-scratch xoshiro256++ generator, distribution
//!   samplers, and deterministic seed derivation so every experiment in
//!   the harness is reproducible from a single seed.
//! * [`par`] — data-parallel primitives over a lazily initialized,
//!   reusable worker pool (the workspace's rayon replacement).
//!
//! Everything is implemented from scratch (no BLAS, no ndarray, no
//! registry crates at all) per the reproduction's hermetic-build ground
//! rules (`docs/BUILD.md`); the GEMM kernel splits rows contiguously
//! across the pool's fixed thread team.
//!
//! System-inventory row **S1** in DESIGN.md §1.
//!
//! `unsafe` is denied crate-wide with one audited exception: the
//! `pool`-internal lifetime erasure that lets the persistent worker
//! threads run borrowed closures (see `pool.rs` for the safety
//! argument). Everything else remains `unsafe`-free.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod alloc_counter;
pub mod dvec;
pub mod fastexp;
mod gemm;
mod matrix;
pub mod ops;
pub mod par;
mod pool;
pub mod rng;

pub use gemm::gemm_par_threshold_flops;
pub use matrix::Matrix;

/// Absolute tolerance used by the crate's approximate float comparisons.
pub const DEFAULT_TOL: f32 = 1e-5;

/// Returns `true` when `a` and `b` agree to within `tol` absolutely or
/// `tol` relative to the larger magnitude, whichever is looser.
///
/// The dual criterion keeps comparisons meaningful both near zero and for
/// large accumulated sums (e.g. losses summed over thousands of samples).
#[inline]
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

/// `f64` twin of [`approx_eq`] for the optimization-side code.
#[inline]
pub fn approx_eq_f64(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_near_zero() {
        assert!(approx_eq(0.0, 1e-7, 1e-5));
        assert!(!approx_eq(0.0, 1e-3, 1e-5));
    }

    #[test]
    fn approx_eq_relative_for_large_values() {
        assert!(approx_eq(1_000_000.0, 1_000_001.0, 1e-5));
        assert!(!approx_eq(1_000_000.0, 1_100_000.0, 1e-5));
    }

    #[test]
    fn approx_eq_f64_symmetric() {
        assert!(approx_eq_f64(3.0, 3.0 + 1e-12, 1e-9));
        assert!(approx_eq_f64(3.0 + 1e-12, 3.0, 1e-9));
    }
}
