//! Row-major dense `f32` matrix.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A dense, row-major `f32` matrix.
///
/// This is the workhorse type of the training substrate: model weights,
/// mini-batches, activations, and gradients are all `Matrix` values. The
/// layout is a single contiguous `Vec<f32>` with `rows * cols` elements,
/// row `r` occupying `data[r*cols .. (r+1)*cols]`.
///
/// Shape errors are programming errors in this codebase, so shape checks
/// use `assert!` (they are cheap relative to the O(n³)/O(n²) kernels they
/// guard) rather than `Result`.
///
/// # Examples
///
/// ```
/// use fedl_linalg::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let i = Matrix::identity(2);
/// assert_eq!(a.matmul(&i), a);
/// assert_eq!(a.transpose().get(0, 1), 3.0);
/// assert_eq!(a.row(1), &[3.0, 4.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix with every element set to `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// A `1 x n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let n = data.len();
        Self::from_vec(1, n, data)
    }

    /// An `n x 1` column vector.
    pub fn col_vector(data: Vec<f32>) -> Self {
        let n = data.len();
        Self::from_vec(n, 1, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes to `rows x cols` with every element zeroed, reusing the
    /// backing allocation (no heap traffic once the capacity has grown
    /// to the workload's high-water mark). This is the entry point of
    /// every `*_into` kernel destination.
    pub fn resize_to(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` an exact copy of `other`, reusing the backing
    /// allocation when capacity allows.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Column sums written into `out` (reshaped to `1 x cols`).
    pub fn col_sums_into(&self, out: &mut Matrix) {
        out.resize_to(1, self.cols);
        let acc = out.as_mut_slice();
        for row in self.row_iter() {
            for (o, v) in acc.iter_mut().zip(row) {
                *o += v;
            }
        }
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies the rows selected by `indices` into a new matrix, in order.
    ///
    /// Used to assemble mini-batches from a client's sample pool.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a copy with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// `self += alpha * other`, the fused update used by every SGD step.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scales every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Frobenius inner product `<self, other>` (sum of element products).
    pub fn dot(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "dot shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column sums as a `1 x cols` matrix.
    pub fn col_sums(&self) -> Matrix {
        let mut out = vec![0.0f32; self.cols];
        for row in self.row_iter() {
            for (o, v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        Matrix::from_vec(1, self.cols, out)
    }

    /// Index of the maximum element in each row (ties go to the first).
    ///
    /// This is the arg-max used to turn class scores into predictions.
    pub fn row_argmax(&self) -> Vec<usize> {
        self.row_iter()
            .map(|row| {
                let mut best = 0;
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Vertically stacks `blocks` (all must share a column count).
    pub fn vstack(blocks: &[&Matrix]) -> Matrix {
        assert!(!blocks.is_empty(), "vstack of zero blocks");
        let cols = blocks[0].cols;
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for b in blocks {
            assert_eq!(b.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&b.data);
        }
        Matrix::from_vec(rows, cols, data)
    }
}

impl Default for Matrix {
    /// An empty `0 x 0` matrix — the natural seed for `*_into`
    /// destinations and scratch buffers.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        self.axpy(-1.0, rhs);
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f32) -> Matrix {
        let mut out = self.clone();
        out.scale(rhs);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_full_shapes() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = Matrix::full(2, 2, 7.5);
        assert!(f.as_slice().iter().all(|&v| v == 7.5));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 3, vec![1.0; 5]);
    }

    #[test]
    fn identity_diagonal() {
        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 10 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t.get(2, 1), m.get(1, 2));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 12.0, 18.0]);
    }

    #[test]
    fn select_rows_builds_batches() {
        let m = Matrix::from_fn(4, 2, |r, _| r as f32);
        let b = m.select_rows(&[3, 1]);
        assert_eq!(b.row(0), &[3.0, 3.0]);
        assert_eq!(b.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn row_argmax_first_tie_wins() {
        let m = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.9, 5.0, 1.0, 2.0]);
        assert_eq!(m.row_argmax(), vec![1, 0]);
    }

    #[test]
    fn col_sums_and_mean() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.col_sums().as_slice(), &[4.0, 6.0]);
        assert_eq!(m.mean(), 2.5);
        assert_eq!(m.sum(), 10.0);
    }

    #[test]
    fn hadamard_and_dot_agree() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).sum(), a.dot(&b));
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(m.norm_sq(), 25.0);
        assert_eq!(m.norm(), 5.0);
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let s = Matrix::vstack(&[&a, &b]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn resize_to_zeroes_and_reuses_capacity() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0; 6]);
        let cap = m.data.capacity();
        m.resize_to(3, 2);
        assert_eq!(m.shape(), (3, 2));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(m.data.capacity(), cap);
    }

    #[test]
    fn copy_from_and_col_sums_into_match_owned_forms() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 7 + c) as f32);
        let mut b = Matrix::default();
        b.copy_from(&a);
        assert_eq!(a, b);
        let mut sums = Matrix::default();
        a.col_sums_into(&mut sums);
        assert_eq!(sums, a.col_sums());
    }

    #[test]
    fn non_finite_detection() {
        let mut m = Matrix::zeros(1, 2);
        assert!(!m.has_non_finite());
        m.set(0, 1, f32::NAN);
        assert!(m.has_non_finite());
    }

    #[test]
    fn operator_add_sub() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }
}
