//! Counting global allocator for allocation-regression tests.
//!
//! [`CountingAllocator`] wraps [`std::alloc::System`] and counts every
//! allocation (and reallocation) it serves. Integration-test binaries
//! that assert zero-steady-state-allocation hot paths install it as
//! their `#[global_allocator]`:
//!
//! ```text
//! use fedl_linalg::alloc_counter::CountingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//!
//! let before = ALLOC.allocations();
//! hot_path();
//! assert_eq!(ALLOC.allocations(), before);
//! ```
//!
//! The module ships in the library (a `#[global_allocator]` cannot be
//! exported from another crate's `#[cfg(test)]` code), but production
//! binaries never install it — counting only happens in the dedicated
//! test binaries that declare the static, so the default allocator
//! elsewhere is untouched.
//!
//! Counters use relaxed atomics: the regression tests run their
//! measured region single-threaded (see `force_max_threads` in
//! [`crate::par`]), so precise cross-thread ordering is not needed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-backed allocator that counts allocations and bytes.
#[derive(Debug)]
pub struct CountingAllocator {
    allocations: AtomicU64,
    bytes: AtomicU64,
}

impl CountingAllocator {
    /// A fresh counter around the system allocator.
    pub const fn new() -> Self {
        Self { allocations: AtomicU64::new(0), bytes: AtomicU64::new(0) }
    }

    /// Total allocations served so far (allocs + grows/shrinks that
    /// moved memory through `realloc`).
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Total bytes requested so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY (audited exception to the crate-wide `deny(unsafe_code)`,
// like the pool's lifetime erasure): every method forwards verbatim to
// `System`, which upholds the `GlobalAlloc` contract; the only added
// behavior is relaxed counter increments, which cannot affect the
// returned memory.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}
