//! Argument parsing for the `experiments` binary, kept in the library
//! so it is unit-testable.

use std::path::PathBuf;

use crate::profile::Profile;

/// The experiments the CLI can dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Figs. 2 & 4 (FMNIST time/round panels).
    FigFmnist,
    /// Figs. 3 & 5 (CIFAR time/round panels).
    FigCifar,
    /// Fig. 6 (FMNIST budget sweep).
    Fig6,
    /// Fig. 7 (CIFAR budget sweep).
    Fig7,
    /// §6.2 headline table.
    Headline,
    /// Corollary-1 regret/fit validation.
    Regret,
    /// RDCS vs independent rounding.
    Rounding,
    /// Step-size schedule ablation.
    Stepsize,
    /// Aggregation-normalization ablation.
    Aggregation,
    /// 1-lookahead latency-oracle reference.
    Oracle,
    /// Selection-fairness extension study.
    Fairness,
    /// FDMA bandwidth-allocation extension study.
    Bandwidth,
    /// Mid-epoch dropout robustness study.
    Dropout,
    /// Multi-seed replication of the Fig. 2 comparison.
    Replicate,
    /// Everything above.
    All,
    /// Offline analysis of a telemetry JSONL run log.
    TelemetryReport,
}

/// A fully parsed invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// Experiment scale.
    pub profile: Profile,
    /// Output directory for CSV/JSON.
    pub out_dir: PathBuf,
    /// What to run.
    pub command: Command,
    /// Input file for [`Command::TelemetryReport`].
    pub input: Option<PathBuf>,
    /// Event kinds that must appear in the log (`--require`).
    pub require: Vec<String>,
    /// Result-cache directory (`--cache-dir`); enables the cache.
    pub cache_dir: Option<PathBuf>,
    /// `--no-cache`: never consult or write the result cache.
    pub no_cache: bool,
    /// `--resume`: enable the cache at its default location so a
    /// re-invocation skips already-completed cells.
    pub resume: bool,
}

impl Invocation {
    /// The directory the result cache should use, or `None` when
    /// caching is disabled for this invocation.
    ///
    /// The cache is on iff `--cache-dir` or `--resume` was given and
    /// `--no-cache` was not; `--resume` without an explicit directory
    /// defaults to `<out_dir>/cache`.
    pub fn effective_cache_dir(&self) -> Option<PathBuf> {
        if self.no_cache {
            return None;
        }
        match (&self.cache_dir, self.resume) {
            (Some(dir), _) => Some(dir.clone()),
            (None, true) => Some(self.out_dir.join("cache")),
            (None, false) => None,
        }
    }
}

/// Usage string printed on parse errors.
pub const USAGE: &str = "usage: experiments [--quick] [--out DIR] \
[--cache-dir DIR] [--resume] [--no-cache] \
<fig2|fig3|fig4|fig5|fig6|fig7|headline|regret|rounding|stepsize|aggregation|oracle|fairness|bandwidth|dropout|replicate|all>\n\
       experiments telemetry-report FILE [--require kind1,kind2,...]";

/// Parses the argument list (without the program name).
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Invocation, String> {
    let mut profile = Profile::Paper;
    let mut out_dir = PathBuf::from("results");
    let mut command: Option<Command> = None;
    let mut input: Option<PathBuf> = None;
    let mut require: Vec<String> = Vec::new();
    let mut cache_dir: Option<PathBuf> = None;
    let mut no_cache = false;
    let mut resume = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => profile = Profile::Quick,
            "--out" => {
                out_dir = PathBuf::from(
                    it.next().ok_or_else(|| "--out requires a directory".to_string())?,
                );
            }
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--cache-dir requires a directory".to_string())?,
                ));
            }
            "--no-cache" => no_cache = true,
            "--resume" => resume = true,
            "--require" => {
                let list = it
                    .next()
                    .ok_or_else(|| "--require needs a comma-separated kind list".to_string())?;
                require.extend(
                    list.split(',').filter(|k| !k.is_empty()).map(str::to_string),
                );
            }
            other if command.is_none() => {
                command = Some(match other {
                    "fig2" | "fig4" => Command::FigFmnist,
                    "fig3" | "fig5" => Command::FigCifar,
                    "fig6" => Command::Fig6,
                    "fig7" => Command::Fig7,
                    "headline" => Command::Headline,
                    "regret" => Command::Regret,
                    "rounding" => Command::Rounding,
                    "stepsize" => Command::Stepsize,
                    "aggregation" => Command::Aggregation,
                    "oracle" => Command::Oracle,
                    "fairness" => Command::Fairness,
                    "bandwidth" => Command::Bandwidth,
                    "dropout" => Command::Dropout,
                    "replicate" => Command::Replicate,
                    "all" => Command::All,
                    "telemetry-report" => Command::TelemetryReport,
                    unknown => return Err(format!("unknown experiment: {unknown}")),
                });
            }
            other if command == Some(Command::TelemetryReport) && input.is_none() => {
                input = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    let command = command.ok_or_else(|| USAGE.to_string())?;
    if command == Command::TelemetryReport && input.is_none() {
        return Err("telemetry-report requires a JSONL run-log file".to_string());
    }
    if command != Command::TelemetryReport && !require.is_empty() {
        return Err("--require only applies to telemetry-report".to_string());
    }
    if command == Command::TelemetryReport && (cache_dir.is_some() || no_cache || resume) {
        return Err("cache flags do not apply to telemetry-report".to_string());
    }
    Ok(Invocation {
        profile,
        out_dir,
        command,
        input,
        require,
        cache_dir,
        no_cache,
        resume,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_to_paper_profile_and_results_dir() {
        let inv = parse(args(&["fig2"])).unwrap();
        assert_eq!(inv.profile, Profile::Paper);
        assert_eq!(inv.out_dir, PathBuf::from("results"));
        assert_eq!(inv.command, Command::FigFmnist);
    }

    #[test]
    fn quick_and_out_flags() {
        let inv = parse(args(&["--quick", "--out", "/tmp/x", "fig7"])).unwrap();
        assert_eq!(inv.profile, Profile::Quick);
        assert_eq!(inv.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(inv.command, Command::Fig7);
    }

    #[test]
    fn flag_order_is_free() {
        let inv = parse(args(&["headline", "--quick"]));
        // Command first, flags after: flags still apply.
        let inv = inv.unwrap();
        assert_eq!(inv.profile, Profile::Quick);
        assert_eq!(inv.command, Command::Headline);
    }

    #[test]
    fn fig_aliases_collapse() {
        assert_eq!(parse(args(&["fig2"])).unwrap().command, Command::FigFmnist);
        assert_eq!(parse(args(&["fig4"])).unwrap().command, Command::FigFmnist);
        assert_eq!(parse(args(&["fig3"])).unwrap().command, Command::FigCifar);
        assert_eq!(parse(args(&["fig5"])).unwrap().command, Command::FigCifar);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(args(&[])).unwrap_err().contains("usage"));
        assert!(parse(args(&["frobnicate"])).unwrap_err().contains("unknown experiment"));
        assert!(parse(args(&["--out"])).unwrap_err().contains("--out requires"));
        assert!(parse(args(&["fig2", "fig3"])).unwrap_err().contains("unexpected"));
    }

    #[test]
    fn telemetry_report_takes_a_file_and_required_kinds() {
        let inv = parse(args(&[
            "telemetry-report",
            "results/run.jsonl",
            "--require",
            "run_start,epoch,run_end",
        ]))
        .unwrap();
        assert_eq!(inv.command, Command::TelemetryReport);
        assert_eq!(inv.input, Some(PathBuf::from("results/run.jsonl")));
        assert_eq!(inv.require, vec!["run_start", "epoch", "run_end"]);
    }

    #[test]
    fn telemetry_report_rejects_bad_shapes() {
        assert!(parse(args(&["telemetry-report"]))
            .unwrap_err()
            .contains("requires a JSONL run-log file"));
        assert!(parse(args(&["telemetry-report", "a.jsonl", "b.jsonl"]))
            .unwrap_err()
            .contains("unexpected"));
        assert!(parse(args(&["fig2", "--require", "epoch"]))
            .unwrap_err()
            .contains("only applies to telemetry-report"));
        assert!(parse(args(&["telemetry-report", "a.jsonl", "--require"]))
            .unwrap_err()
            .contains("--require needs"));
    }

    #[test]
    fn cache_is_off_by_default() {
        let inv = parse(args(&["fig2"])).unwrap();
        assert_eq!(inv.cache_dir, None);
        assert!(!inv.no_cache && !inv.resume);
        assert_eq!(inv.effective_cache_dir(), None);
    }

    #[test]
    fn cache_dir_flag_enables_the_cache() {
        let inv = parse(args(&["--cache-dir", "/tmp/c", "fig2"])).unwrap();
        assert_eq!(inv.effective_cache_dir(), Some(PathBuf::from("/tmp/c")));
    }

    #[test]
    fn resume_defaults_the_cache_under_out_dir() {
        let inv = parse(args(&["--resume", "--out", "/tmp/r", "fig6"])).unwrap();
        assert_eq!(inv.effective_cache_dir(), Some(PathBuf::from("/tmp/r/cache")));
        // An explicit directory wins over the default.
        let inv = parse(args(&["--resume", "--cache-dir", "/tmp/c", "fig6"])).unwrap();
        assert_eq!(inv.effective_cache_dir(), Some(PathBuf::from("/tmp/c")));
    }

    #[test]
    fn no_cache_overrides_everything() {
        let inv =
            parse(args(&["--no-cache", "--resume", "--cache-dir", "/tmp/c", "all"])).unwrap();
        assert_eq!(inv.effective_cache_dir(), None);
    }

    #[test]
    fn cache_flags_are_rejected_for_telemetry_report() {
        for flags in [&["--resume"][..], &["--no-cache"], &["--cache-dir", "/tmp/c"]] {
            let mut a = vec!["telemetry-report", "run.jsonl"];
            a.extend_from_slice(flags);
            assert!(
                parse(args(&a)).unwrap_err().contains("do not apply"),
                "{flags:?} should be rejected"
            );
        }
        assert!(parse(args(&["fig2", "--cache-dir"]))
            .unwrap_err()
            .contains("--cache-dir requires"));
    }

    #[test]
    fn every_named_command_parses() {
        for (name, cmd) in [
            ("fig6", Command::Fig6),
            ("regret", Command::Regret),
            ("rounding", Command::Rounding),
            ("stepsize", Command::Stepsize),
            ("aggregation", Command::Aggregation),
            ("oracle", Command::Oracle),
            ("fairness", Command::Fairness),
            ("bandwidth", Command::Bandwidth),
            ("dropout", Command::Dropout),
            ("replicate", Command::Replicate),
            ("all", Command::All),
        ] {
            assert_eq!(parse(args(&[name])).unwrap().command, cmd, "{name}");
        }
    }
}
