//! Argument parsing for the `experiments` binary, kept in the library
//! so it is unit-testable.

use std::path::PathBuf;

use crate::profile::Profile;

/// The experiments the CLI can dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Figs. 2 & 4 (FMNIST time/round panels).
    FigFmnist,
    /// Figs. 3 & 5 (CIFAR time/round panels).
    FigCifar,
    /// Fig. 6 (FMNIST budget sweep).
    Fig6,
    /// Fig. 7 (CIFAR budget sweep).
    Fig7,
    /// §6.2 headline table.
    Headline,
    /// Corollary-1 regret/fit validation.
    Regret,
    /// RDCS vs independent rounding.
    Rounding,
    /// Step-size schedule ablation.
    Stepsize,
    /// Aggregation-normalization ablation.
    Aggregation,
    /// 1-lookahead latency-oracle reference.
    Oracle,
    /// Selection-fairness extension study.
    Fairness,
    /// FDMA bandwidth-allocation extension study.
    Bandwidth,
    /// Mid-epoch dropout robustness study.
    Dropout,
    /// Multi-seed replication of the Fig. 2 comparison.
    Replicate,
    /// Everything above.
    All,
    /// Offline analysis of a telemetry JSONL run log.
    TelemetryReport,
    /// Perf snapshot: run the seeded kernel suite, write `BENCH.json`.
    Bench,
    /// Noise-aware comparison of two `BENCH.json` snapshots (the CI
    /// regression gate).
    BenchCompare,
    /// Append a `BENCH.json` snapshot to `BENCH_HISTORY.jsonl`.
    BenchHistoryAppend,
    /// Per-kernel trend tables/charts over the snapshot history.
    BenchHistoryReport,
    /// Gate a snapshot against the rolling baseline (median of the
    /// last K compatible history entries).
    BenchHistoryGate,
    /// Per-client attribution dashboard (ASCII + optional HTML) from a
    /// telemetry JSONL run log; two or more logs switch to the
    /// multi-run policy-overlay mode.
    Dashboard,
    /// Cross-process distributed-trace report (ASCII + optional HTML)
    /// merging a coordinator run log with its per-worker sibling logs
    /// into one causally-ordered timeline.
    TraceReport,
}

impl Command {
    /// Whether the result cache makes sense for this command (it only
    /// applies to experiment runs, not to offline analysis or the
    /// bench suite).
    fn takes_cache(self) -> bool {
        !matches!(
            self,
            Command::TelemetryReport
                | Command::Bench
                | Command::BenchCompare
                | Command::BenchHistoryAppend
                | Command::BenchHistoryReport
                | Command::BenchHistoryGate
                | Command::Dashboard
                | Command::TraceReport
        )
    }

    /// Whether this is one of the `bench-history` actions (which share
    /// the `--history` flag).
    fn is_bench_history(self) -> bool {
        matches!(
            self,
            Command::BenchHistoryAppend | Command::BenchHistoryReport | Command::BenchHistoryGate
        )
    }
}

/// A fully parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// Experiment scale.
    pub profile: Profile,
    /// Output directory for CSV/JSON (for [`Command::Bench`], `--out`
    /// may instead name the snapshot file — see
    /// [`Invocation::bench_snapshot_path`]).
    pub out_dir: PathBuf,
    /// What to run.
    pub command: Command,
    /// First input file: the run log for [`Command::TelemetryReport`]
    /// and [`Command::Dashboard`], the baseline snapshot for
    /// [`Command::BenchCompare`], the snapshot for
    /// [`Command::BenchHistoryAppend`] / [`Command::BenchHistoryGate`].
    pub input: Option<PathBuf>,
    /// Second input file: the new snapshot for
    /// [`Command::BenchCompare`].
    pub input2: Option<PathBuf>,
    /// Every input file, in order — [`Command::Dashboard`] accepts two
    /// or more run logs for the multi-run overlay mode.
    /// `inputs[0] == input` whenever both are set.
    pub inputs: Vec<PathBuf>,
    /// Event kinds that must appear in the log (`--require`).
    pub require: Vec<String>,
    /// Relative slowdown tolerance for [`Command::BenchCompare`] and
    /// [`Command::BenchHistoryGate`] (`--threshold PCT`, as a
    /// fraction: 0.25 = 25 %).
    pub threshold: f64,
    /// HTML output file for [`Command::Dashboard`] and
    /// [`Command::BenchHistoryReport`] (`--html`).
    pub html: Option<PathBuf>,
    /// History file for the `bench-history` actions (`--history`);
    /// defaults to [`DEFAULT_HISTORY_PATH`].
    pub history: Option<PathBuf>,
    /// Rolling-baseline window K for [`Command::BenchHistoryGate`]
    /// (`--window K`).
    pub window: usize,
    /// Result-cache directory (`--cache-dir`); enables the cache.
    pub cache_dir: Option<PathBuf>,
    /// `--no-cache`: never consult or write the result cache.
    pub no_cache: bool,
    /// `--resume`: enable the cache at its default location so a
    /// re-invocation skips already-completed cells.
    pub resume: bool,
}

/// Default `--threshold` for `bench-compare` and `bench-history gate`:
/// 25 % — generous because the CI gate compares quick runs taken
/// seconds apart on a shared machine.
pub const DEFAULT_COMPARE_THRESHOLD: f64 = 0.25;

/// Default `--history` file for the `bench-history` actions. Lives
/// under `results/` so the standard `.gitignore` globs cover it.
pub const DEFAULT_HISTORY_PATH: &str = "results/BENCH_HISTORY.jsonl";

impl Invocation {
    /// The directory the result cache should use, or `None` when
    /// caching is disabled for this invocation.
    ///
    /// The cache is on iff `--cache-dir` or `--resume` was given and
    /// `--no-cache` was not; `--resume` without an explicit directory
    /// defaults to `<out_dir>/cache`.
    pub fn effective_cache_dir(&self) -> Option<PathBuf> {
        if self.no_cache {
            return None;
        }
        match (&self.cache_dir, self.resume) {
            (Some(dir), _) => Some(dir.clone()),
            (None, true) => Some(self.out_dir.join("cache")),
            (None, false) => None,
        }
    }

    /// The history file the `bench-history` actions operate on:
    /// `--history` when given, [`DEFAULT_HISTORY_PATH`] otherwise.
    pub fn history_path(&self) -> PathBuf {
        self.history.clone().unwrap_or_else(|| PathBuf::from(DEFAULT_HISTORY_PATH))
    }

    /// Where [`Command::Bench`] writes its snapshot: `--out` names the
    /// file directly when it ends in `.json`, otherwise it is treated
    /// as a directory and the snapshot lands at `<out>/BENCH.json`.
    pub fn bench_snapshot_path(&self) -> PathBuf {
        if self.out_dir.extension().is_some_and(|e| e == "json") {
            self.out_dir.clone()
        } else {
            self.out_dir.join("BENCH.json")
        }
    }
}

/// Usage string printed on parse errors.
pub const USAGE: &str = "usage: experiments [--quick] [--out DIR] \
[--cache-dir DIR] [--resume] [--no-cache] \
<fig2|fig3|fig4|fig5|fig6|fig7|headline|regret|rounding|stepsize|aggregation|oracle|fairness|bandwidth|dropout|replicate|all>\n\
       experiments telemetry-report FILE [--require kind1,kind2,...]\n\
       experiments bench [--quick] [--out FILE.json|DIR]  (incl. scale/ kernels: 10k tier quick, +100k/1m paper)\n\
       experiments bench-compare BASE.json NEW.json [--threshold PCT]\n\
       experiments bench-history append SNAP.json [--history FILE]\n\
       experiments bench-history report [--history FILE] [--html FILE.html]\n\
       experiments bench-history gate NEW.json [--history FILE] [--window K] [--threshold PCT]\n\
       experiments dashboard RUN.jsonl [RUN2.jsonl ...] [--html FILE.html]\n\
       experiments trace-report COORD.jsonl [WORKER.jsonl ...] [--html FILE.html]\n\
       experiments stats --addr HOST:PORT [options]    (live registry snapshot from a coordinator)\n\
       experiments serve --addr HOST:PORT [options]    (federation service; see docs/SERVE.md)\n\
       experiments loadgen --addr HOST:PORT [options]  (replay clients against a server)";

/// Parses the argument list (without the program name).
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Invocation, String> {
    let mut profile = Profile::Paper;
    let mut out_dir = PathBuf::from("results");
    let mut command: Option<Command> = None;
    let mut input: Option<PathBuf> = None;
    let mut input2: Option<PathBuf> = None;
    let mut require: Vec<String> = Vec::new();
    let mut threshold = DEFAULT_COMPARE_THRESHOLD;
    let mut threshold_given = false;
    let mut html: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut no_cache = false;
    let mut resume = false;
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut history: Option<PathBuf> = None;
    let mut window = crate::history::DEFAULT_BASELINE_WINDOW;
    let mut window_given = false;
    // `bench-history` is a two-word command: the flag marks that the
    // action word (`append` / `report` / `gate`) is still pending.
    let mut history_action_pending = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => profile = Profile::Quick,
            "--out" => {
                out_dir = PathBuf::from(
                    it.next().ok_or_else(|| "--out requires a directory".to_string())?,
                );
            }
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--cache-dir requires a directory".to_string())?,
                ));
            }
            "--no-cache" => no_cache = true,
            "--resume" => resume = true,
            "--require" => {
                let list = it
                    .next()
                    .ok_or_else(|| "--require needs a comma-separated kind list".to_string())?;
                require.extend(list.split(',').filter(|k| !k.is_empty()).map(str::to_string));
            }
            "--threshold" => {
                let pct =
                    it.next().ok_or_else(|| "--threshold requires a percentage".to_string())?;
                let pct: f64 =
                    pct.parse().map_err(|_| format!("--threshold: not a number: {pct}"))?;
                if !(pct > 0.0 && pct.is_finite()) {
                    return Err("--threshold must be a positive percentage".to_string());
                }
                threshold = pct / 100.0;
                threshold_given = true;
            }
            "--html" => {
                html = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--html requires a file".to_string())?,
                ));
            }
            "--history" => {
                history = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--history requires a file".to_string())?,
                ));
            }
            "--window" => {
                let k = it.next().ok_or_else(|| "--window requires an entry count".to_string())?;
                let k: usize = k.parse().map_err(|_| format!("--window: not a number: {k}"))?;
                if k == 0 {
                    return Err("--window must be at least 1".to_string());
                }
                window = k;
                window_given = true;
            }
            other if history_action_pending => {
                history_action_pending = false;
                command = Some(match other {
                    "append" => Command::BenchHistoryAppend,
                    "report" => Command::BenchHistoryReport,
                    "gate" => Command::BenchHistoryGate,
                    unknown => {
                        return Err(format!(
                            "unknown bench-history action: {unknown} (expected append, report, or gate)"
                        ))
                    }
                });
            }
            other if command.is_none() => {
                if other == "bench-history" {
                    history_action_pending = true;
                    continue;
                }
                command = Some(match other {
                    "fig2" | "fig4" => Command::FigFmnist,
                    "fig3" | "fig5" => Command::FigCifar,
                    "fig6" => Command::Fig6,
                    "fig7" => Command::Fig7,
                    "headline" => Command::Headline,
                    "regret" => Command::Regret,
                    "rounding" => Command::Rounding,
                    "stepsize" => Command::Stepsize,
                    "aggregation" => Command::Aggregation,
                    "oracle" => Command::Oracle,
                    "fairness" => Command::Fairness,
                    "bandwidth" => Command::Bandwidth,
                    "dropout" => Command::Dropout,
                    "replicate" => Command::Replicate,
                    "all" => Command::All,
                    "telemetry-report" => Command::TelemetryReport,
                    "bench" => Command::Bench,
                    "bench-compare" => Command::BenchCompare,
                    "dashboard" => Command::Dashboard,
                    "trace-report" => Command::TraceReport,
                    unknown => return Err(format!("unknown experiment: {unknown}")),
                });
            }
            other if matches!(command, Some(Command::Dashboard) | Some(Command::TraceReport)) => {
                inputs.push(PathBuf::from(other));
            }
            other
                if matches!(
                    command,
                    Some(Command::TelemetryReport)
                        | Some(Command::BenchCompare)
                        | Some(Command::BenchHistoryAppend)
                        | Some(Command::BenchHistoryGate)
                ) && input.is_none() =>
            {
                input = Some(PathBuf::from(other));
            }
            other if command == Some(Command::BenchCompare) && input2.is_none() => {
                input2 = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    if history_action_pending {
        return Err("bench-history requires an action: append, report, or gate".to_string());
    }
    let command = command.ok_or_else(|| USAGE.to_string())?;
    if command == Command::Dashboard {
        if inputs.is_empty() {
            return Err(
                "dashboard requires a JSONL run-log file (one, or several to overlay)".to_string()
            );
        }
        input = inputs.first().cloned();
    }
    if command == Command::TraceReport {
        if inputs.is_empty() {
            return Err("trace-report requires a coordinator JSONL run log \
                        (plus any worker logs to merge)"
                .to_string());
        }
        input = inputs.first().cloned();
    }
    if command == Command::TelemetryReport && input.is_none() {
        return Err("telemetry-report requires a JSONL run-log file".to_string());
    }
    if command == Command::BenchCompare && (input.is_none() || input2.is_none()) {
        return Err("bench-compare requires BASE.json and NEW.json".to_string());
    }
    if command == Command::BenchHistoryAppend && input.is_none() {
        return Err("bench-history append requires a BENCH.json snapshot".to_string());
    }
    if command == Command::BenchHistoryGate && input.is_none() {
        return Err("bench-history gate requires a NEW.json snapshot".to_string());
    }
    if command != Command::TelemetryReport && !require.is_empty() {
        return Err("--require only applies to telemetry-report".to_string());
    }
    if threshold_given && !matches!(command, Command::BenchCompare | Command::BenchHistoryGate) {
        return Err("--threshold only applies to bench-compare and bench-history gate".to_string());
    }
    if html.is_some()
        && !matches!(
            command,
            Command::Dashboard | Command::BenchHistoryReport | Command::TraceReport
        )
    {
        return Err(
            "--html only applies to dashboard, trace-report, and bench-history report".to_string()
        );
    }
    if history.is_some() && !command.is_bench_history() {
        return Err("--history only applies to the bench-history actions".to_string());
    }
    if window_given && command != Command::BenchHistoryGate {
        return Err("--window only applies to bench-history gate".to_string());
    }
    if !command.takes_cache() && (cache_dir.is_some() || no_cache || resume) {
        return Err("cache flags do not apply to this command".to_string());
    }
    Ok(Invocation {
        profile,
        out_dir,
        command,
        input,
        input2,
        inputs,
        require,
        threshold,
        html,
        history,
        window,
        cache_dir,
        no_cache,
        resume,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_to_paper_profile_and_results_dir() {
        let inv = parse(args(&["fig2"])).unwrap();
        assert_eq!(inv.profile, Profile::Paper);
        assert_eq!(inv.out_dir, PathBuf::from("results"));
        assert_eq!(inv.command, Command::FigFmnist);
    }

    #[test]
    fn quick_and_out_flags() {
        let inv = parse(args(&["--quick", "--out", "/tmp/x", "fig7"])).unwrap();
        assert_eq!(inv.profile, Profile::Quick);
        assert_eq!(inv.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(inv.command, Command::Fig7);
    }

    #[test]
    fn flag_order_is_free() {
        let inv = parse(args(&["headline", "--quick"]));
        // Command first, flags after: flags still apply.
        let inv = inv.unwrap();
        assert_eq!(inv.profile, Profile::Quick);
        assert_eq!(inv.command, Command::Headline);
    }

    #[test]
    fn fig_aliases_collapse() {
        assert_eq!(parse(args(&["fig2"])).unwrap().command, Command::FigFmnist);
        assert_eq!(parse(args(&["fig4"])).unwrap().command, Command::FigFmnist);
        assert_eq!(parse(args(&["fig3"])).unwrap().command, Command::FigCifar);
        assert_eq!(parse(args(&["fig5"])).unwrap().command, Command::FigCifar);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(args(&[])).unwrap_err().contains("usage"));
        assert!(parse(args(&["frobnicate"])).unwrap_err().contains("unknown experiment"));
        assert!(parse(args(&["--out"])).unwrap_err().contains("--out requires"));
        assert!(parse(args(&["fig2", "fig3"])).unwrap_err().contains("unexpected"));
    }

    #[test]
    fn telemetry_report_takes_a_file_and_required_kinds() {
        let inv = parse(args(&[
            "telemetry-report",
            "results/run.jsonl",
            "--require",
            "run_start,epoch,run_end",
        ]))
        .unwrap();
        assert_eq!(inv.command, Command::TelemetryReport);
        assert_eq!(inv.input, Some(PathBuf::from("results/run.jsonl")));
        assert_eq!(inv.require, vec!["run_start", "epoch", "run_end"]);
    }

    #[test]
    fn telemetry_report_rejects_bad_shapes() {
        assert!(parse(args(&["telemetry-report"]))
            .unwrap_err()
            .contains("requires a JSONL run-log file"));
        assert!(parse(args(&["telemetry-report", "a.jsonl", "b.jsonl"]))
            .unwrap_err()
            .contains("unexpected"));
        assert!(parse(args(&["fig2", "--require", "epoch"]))
            .unwrap_err()
            .contains("only applies to telemetry-report"));
        assert!(parse(args(&["telemetry-report", "a.jsonl", "--require"]))
            .unwrap_err()
            .contains("--require needs"));
    }

    #[test]
    fn cache_is_off_by_default() {
        let inv = parse(args(&["fig2"])).unwrap();
        assert_eq!(inv.cache_dir, None);
        assert!(!inv.no_cache && !inv.resume);
        assert_eq!(inv.effective_cache_dir(), None);
    }

    #[test]
    fn cache_dir_flag_enables_the_cache() {
        let inv = parse(args(&["--cache-dir", "/tmp/c", "fig2"])).unwrap();
        assert_eq!(inv.effective_cache_dir(), Some(PathBuf::from("/tmp/c")));
    }

    #[test]
    fn resume_defaults_the_cache_under_out_dir() {
        let inv = parse(args(&["--resume", "--out", "/tmp/r", "fig6"])).unwrap();
        assert_eq!(inv.effective_cache_dir(), Some(PathBuf::from("/tmp/r/cache")));
        // An explicit directory wins over the default.
        let inv = parse(args(&["--resume", "--cache-dir", "/tmp/c", "fig6"])).unwrap();
        assert_eq!(inv.effective_cache_dir(), Some(PathBuf::from("/tmp/c")));
    }

    #[test]
    fn no_cache_overrides_everything() {
        let inv = parse(args(&["--no-cache", "--resume", "--cache-dir", "/tmp/c", "all"])).unwrap();
        assert_eq!(inv.effective_cache_dir(), None);
    }

    #[test]
    fn cache_flags_are_rejected_for_telemetry_report() {
        for flags in [&["--resume"][..], &["--no-cache"], &["--cache-dir", "/tmp/c"]] {
            let mut a = vec!["telemetry-report", "run.jsonl"];
            a.extend_from_slice(flags);
            assert!(
                parse(args(&a)).unwrap_err().contains("do not apply"),
                "{flags:?} should be rejected"
            );
        }
        assert!(parse(args(&["fig2", "--cache-dir"]))
            .unwrap_err()
            .contains("--cache-dir requires"));
    }

    #[test]
    fn bench_resolves_out_to_file_or_directory() {
        let inv = parse(args(&["bench", "--quick"])).unwrap();
        assert_eq!(inv.command, Command::Bench);
        assert_eq!(inv.profile, Profile::Quick);
        assert_eq!(inv.bench_snapshot_path(), PathBuf::from("results/BENCH.json"));
        // --out ending in .json names the snapshot file itself...
        let inv = parse(args(&["bench", "--out", "results/BENCH_quick.json"])).unwrap();
        assert_eq!(inv.bench_snapshot_path(), PathBuf::from("results/BENCH_quick.json"));
        // ...anything else is a directory.
        let inv = parse(args(&["bench", "--out", "/tmp/perf"])).unwrap();
        assert_eq!(inv.bench_snapshot_path(), PathBuf::from("/tmp/perf/BENCH.json"));
    }

    #[test]
    fn bench_compare_takes_two_snapshots_and_a_threshold() {
        let inv = parse(args(&["bench-compare", "a.json", "b.json"])).unwrap();
        assert_eq!(inv.command, Command::BenchCompare);
        assert_eq!(inv.input, Some(PathBuf::from("a.json")));
        assert_eq!(inv.input2, Some(PathBuf::from("b.json")));
        assert_eq!(inv.threshold, DEFAULT_COMPARE_THRESHOLD);
        let inv = parse(args(&["bench-compare", "a.json", "b.json", "--threshold", "40"])).unwrap();
        assert!((inv.threshold - 0.40).abs() < 1e-12);
    }

    #[test]
    fn bench_compare_rejects_bad_shapes() {
        assert!(parse(args(&["bench-compare", "a.json"]))
            .unwrap_err()
            .contains("requires BASE.json and NEW.json"));
        assert!(parse(args(&["bench-compare", "a.json", "b.json", "c.json"]))
            .unwrap_err()
            .contains("unexpected"));
        assert!(parse(args(&["bench-compare", "a.json", "b.json", "--threshold", "x"]))
            .unwrap_err()
            .contains("not a number"));
        assert!(parse(args(&["bench-compare", "a.json", "b.json", "--threshold", "-5"]))
            .unwrap_err()
            .contains("positive percentage"));
        assert!(parse(args(&["fig2", "--threshold", "10"]))
            .unwrap_err()
            .contains("only applies to bench-compare"));
    }

    #[test]
    fn dashboard_takes_a_log_and_optional_html() {
        let inv = parse(args(&["dashboard", "run.jsonl"])).unwrap();
        assert_eq!(inv.command, Command::Dashboard);
        assert_eq!(inv.input, Some(PathBuf::from("run.jsonl")));
        assert_eq!(inv.html, None);
        let inv = parse(args(&["dashboard", "run.jsonl", "--html", "dash.html"])).unwrap();
        assert_eq!(inv.html, Some(PathBuf::from("dash.html")));
        assert!(parse(args(&["dashboard"])).unwrap_err().contains("requires a JSONL run-log file"));
        assert!(parse(args(&["fig2", "--html", "x.html"]))
            .unwrap_err()
            .contains("only applies to dashboard"));
    }

    #[test]
    fn dashboard_accepts_multiple_logs_for_the_overlay_mode() {
        let inv = parse(args(&["dashboard", "a.jsonl", "b.jsonl", "c.jsonl"])).unwrap();
        assert_eq!(inv.command, Command::Dashboard);
        assert_eq!(
            inv.inputs,
            vec![PathBuf::from("a.jsonl"), PathBuf::from("b.jsonl"), PathBuf::from("c.jsonl")]
        );
        assert_eq!(inv.input, Some(PathBuf::from("a.jsonl")), "first log mirrors input");
        let inv = parse(args(&["dashboard", "a.jsonl", "b.jsonl", "--html", "o.html"])).unwrap();
        assert_eq!(inv.inputs.len(), 2);
        assert_eq!(inv.html, Some(PathBuf::from("o.html")));
    }

    #[test]
    fn bench_history_append_takes_a_snapshot_and_optional_history() {
        let inv = parse(args(&["bench-history", "append", "BENCH.json"])).unwrap();
        assert_eq!(inv.command, Command::BenchHistoryAppend);
        assert_eq!(inv.input, Some(PathBuf::from("BENCH.json")));
        assert_eq!(inv.history, None);
        assert_eq!(inv.history_path(), PathBuf::from(DEFAULT_HISTORY_PATH));
        let inv =
            parse(args(&["bench-history", "append", "BENCH.json", "--history", "/tmp/h.jsonl"]))
                .unwrap();
        assert_eq!(inv.history_path(), PathBuf::from("/tmp/h.jsonl"));
    }

    #[test]
    fn bench_history_report_takes_optional_html() {
        let inv = parse(args(&["bench-history", "report"])).unwrap();
        assert_eq!(inv.command, Command::BenchHistoryReport);
        assert_eq!(inv.html, None);
        let inv = parse(args(&["bench-history", "report", "--html", "trend.html"])).unwrap();
        assert_eq!(inv.html, Some(PathBuf::from("trend.html")));
    }

    #[test]
    fn bench_history_gate_takes_window_and_threshold() {
        let inv = parse(args(&["bench-history", "gate", "NEW.json"])).unwrap();
        assert_eq!(inv.command, Command::BenchHistoryGate);
        assert_eq!(inv.input, Some(PathBuf::from("NEW.json")));
        assert_eq!(inv.window, crate::history::DEFAULT_BASELINE_WINDOW);
        assert_eq!(inv.threshold, DEFAULT_COMPARE_THRESHOLD);
        let inv = parse(args(&[
            "bench-history",
            "gate",
            "NEW.json",
            "--window",
            "9",
            "--threshold",
            "40",
        ]))
        .unwrap();
        assert_eq!(inv.window, 9);
        assert!((inv.threshold - 0.40).abs() < 1e-12);
    }

    #[test]
    fn bench_history_rejects_bad_shapes() {
        assert!(parse(args(&["bench-history"])).unwrap_err().contains("requires an action"));
        assert!(parse(args(&["bench-history", "frobnicate"]))
            .unwrap_err()
            .contains("unknown bench-history action"));
        assert!(parse(args(&["bench-history", "append"]))
            .unwrap_err()
            .contains("requires a BENCH.json snapshot"));
        assert!(parse(args(&["bench-history", "gate"]))
            .unwrap_err()
            .contains("requires a NEW.json snapshot"));
        assert!(parse(args(&["bench-history", "report", "extra.json"]))
            .unwrap_err()
            .contains("unexpected"));
        assert!(parse(args(&["bench-history", "gate", "a.json", "b.json"]))
            .unwrap_err()
            .contains("unexpected"));
        assert!(parse(args(&["bench-history", "gate", "a.json", "--window", "0"]))
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(args(&["bench-history", "gate", "a.json", "--window", "x"]))
            .unwrap_err()
            .contains("not a number"));
        assert!(parse(args(&["bench-history", "append", "a.json", "--window", "3"]))
            .unwrap_err()
            .contains("only applies to bench-history gate"));
        assert!(parse(args(&["fig2", "--history", "h.jsonl"]))
            .unwrap_err()
            .contains("only applies to the bench-history actions"));
        assert!(parse(args(&["bench-compare", "a.json", "b.json", "--history", "h"]))
            .unwrap_err()
            .contains("only applies to the bench-history actions"));
        // --threshold grew a second home; the old rejection still holds
        // elsewhere, and --html now also serves the trend report.
        assert!(parse(args(&["bench-history", "append", "a.json", "--threshold", "10"]))
            .unwrap_err()
            .contains("only applies to bench-compare and bench-history gate"));
        assert!(parse(args(&["bench-history", "gate", "a.json", "--html", "x.html"]))
            .unwrap_err()
            .contains("only applies to dashboard, trace-report, and bench-history report"));
    }

    #[test]
    fn trace_report_takes_coordinator_plus_worker_logs_and_optional_html() {
        let inv = parse(args(&["trace-report", "coord.jsonl"])).unwrap();
        assert_eq!(inv.command, Command::TraceReport);
        assert_eq!(inv.input, Some(PathBuf::from("coord.jsonl")));
        assert_eq!(inv.inputs, vec![PathBuf::from("coord.jsonl")]);
        let inv = parse(args(&[
            "trace-report",
            "coord.jsonl",
            "coord.worker-0.jsonl",
            "coord.worker-1.jsonl",
            "--html",
            "trace.html",
        ]))
        .unwrap();
        assert_eq!(inv.inputs.len(), 3);
        assert_eq!(inv.input, Some(PathBuf::from("coord.jsonl")), "first log mirrors input");
        assert_eq!(inv.html, Some(PathBuf::from("trace.html")));
    }

    #[test]
    fn trace_report_rejects_bad_shapes() {
        assert!(parse(args(&["trace-report"]))
            .unwrap_err()
            .contains("requires a coordinator JSONL run log"));
        assert!(parse(args(&["trace-report", "coord.jsonl", "--resume"]))
            .unwrap_err()
            .contains("do not apply"));
        assert!(parse(args(&["trace-report", "coord.jsonl", "--require", "epoch"]))
            .unwrap_err()
            .contains("only applies to telemetry-report"));
    }

    #[test]
    fn cache_flags_are_rejected_for_observatory_commands() {
        for cmd in [
            &["bench"][..],
            &["bench-compare", "a.json", "b.json"],
            &["bench-history", "append", "a.json"],
            &["bench-history", "report"],
            &["bench-history", "gate", "a.json"],
            &["dashboard", "run.jsonl"],
            &["trace-report", "coord.jsonl"],
        ] {
            let mut a = cmd.to_vec();
            a.push("--resume");
            assert!(
                parse(args(&a)).unwrap_err().contains("do not apply"),
                "{cmd:?} should reject cache flags"
            );
        }
    }

    #[test]
    fn every_named_command_parses() {
        for (name, cmd) in [
            ("fig6", Command::Fig6),
            ("regret", Command::Regret),
            ("rounding", Command::Rounding),
            ("stepsize", Command::Stepsize),
            ("aggregation", Command::Aggregation),
            ("oracle", Command::Oracle),
            ("fairness", Command::Fairness),
            ("bandwidth", Command::Bandwidth),
            ("dropout", Command::Dropout),
            ("replicate", Command::Replicate),
            ("all", Command::All),
        ] {
            assert_eq!(parse(args(&[name])).unwrap().command, cmd, "{name}");
        }
    }
}
