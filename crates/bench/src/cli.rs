//! Argument parsing for the `experiments` binary, kept in the library
//! so it is unit-testable.

use std::path::PathBuf;

use crate::profile::Profile;

/// The experiments the CLI can dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Figs. 2 & 4 (FMNIST time/round panels).
    FigFmnist,
    /// Figs. 3 & 5 (CIFAR time/round panels).
    FigCifar,
    /// Fig. 6 (FMNIST budget sweep).
    Fig6,
    /// Fig. 7 (CIFAR budget sweep).
    Fig7,
    /// §6.2 headline table.
    Headline,
    /// Corollary-1 regret/fit validation.
    Regret,
    /// RDCS vs independent rounding.
    Rounding,
    /// Step-size schedule ablation.
    Stepsize,
    /// Aggregation-normalization ablation.
    Aggregation,
    /// 1-lookahead latency-oracle reference.
    Oracle,
    /// Selection-fairness extension study.
    Fairness,
    /// FDMA bandwidth-allocation extension study.
    Bandwidth,
    /// Mid-epoch dropout robustness study.
    Dropout,
    /// Multi-seed replication of the Fig. 2 comparison.
    Replicate,
    /// Everything above.
    All,
    /// Offline analysis of a telemetry JSONL run log.
    TelemetryReport,
    /// Perf snapshot: run the seeded kernel suite, write `BENCH.json`.
    Bench,
    /// Noise-aware comparison of two `BENCH.json` snapshots (the CI
    /// regression gate).
    BenchCompare,
    /// Per-client attribution dashboard (ASCII + optional HTML) from a
    /// telemetry JSONL run log.
    Dashboard,
}

impl Command {
    /// Whether the result cache makes sense for this command (it only
    /// applies to experiment runs, not to offline analysis or the
    /// bench suite).
    fn takes_cache(self) -> bool {
        !matches!(
            self,
            Command::TelemetryReport
                | Command::Bench
                | Command::BenchCompare
                | Command::Dashboard
        )
    }
}

/// A fully parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// Experiment scale.
    pub profile: Profile,
    /// Output directory for CSV/JSON (for [`Command::Bench`], `--out`
    /// may instead name the snapshot file — see
    /// [`Invocation::bench_snapshot_path`]).
    pub out_dir: PathBuf,
    /// What to run.
    pub command: Command,
    /// First input file: the run log for [`Command::TelemetryReport`]
    /// and [`Command::Dashboard`], the baseline snapshot for
    /// [`Command::BenchCompare`].
    pub input: Option<PathBuf>,
    /// Second input file: the new snapshot for
    /// [`Command::BenchCompare`].
    pub input2: Option<PathBuf>,
    /// Event kinds that must appear in the log (`--require`).
    pub require: Vec<String>,
    /// Relative slowdown tolerance for [`Command::BenchCompare`]
    /// (`--threshold PCT`, as a fraction: 0.25 = 25 %).
    pub threshold: f64,
    /// HTML output file for [`Command::Dashboard`] (`--html`).
    pub html: Option<PathBuf>,
    /// Result-cache directory (`--cache-dir`); enables the cache.
    pub cache_dir: Option<PathBuf>,
    /// `--no-cache`: never consult or write the result cache.
    pub no_cache: bool,
    /// `--resume`: enable the cache at its default location so a
    /// re-invocation skips already-completed cells.
    pub resume: bool,
}

/// Default `--threshold` for `bench-compare`: 25 % — generous because
/// the CI gate compares two quick runs taken seconds apart on a shared
/// machine.
pub const DEFAULT_COMPARE_THRESHOLD: f64 = 0.25;

impl Invocation {
    /// The directory the result cache should use, or `None` when
    /// caching is disabled for this invocation.
    ///
    /// The cache is on iff `--cache-dir` or `--resume` was given and
    /// `--no-cache` was not; `--resume` without an explicit directory
    /// defaults to `<out_dir>/cache`.
    pub fn effective_cache_dir(&self) -> Option<PathBuf> {
        if self.no_cache {
            return None;
        }
        match (&self.cache_dir, self.resume) {
            (Some(dir), _) => Some(dir.clone()),
            (None, true) => Some(self.out_dir.join("cache")),
            (None, false) => None,
        }
    }

    /// Where [`Command::Bench`] writes its snapshot: `--out` names the
    /// file directly when it ends in `.json`, otherwise it is treated
    /// as a directory and the snapshot lands at `<out>/BENCH.json`.
    pub fn bench_snapshot_path(&self) -> PathBuf {
        if self.out_dir.extension().is_some_and(|e| e == "json") {
            self.out_dir.clone()
        } else {
            self.out_dir.join("BENCH.json")
        }
    }
}

/// Usage string printed on parse errors.
pub const USAGE: &str = "usage: experiments [--quick] [--out DIR] \
[--cache-dir DIR] [--resume] [--no-cache] \
<fig2|fig3|fig4|fig5|fig6|fig7|headline|regret|rounding|stepsize|aggregation|oracle|fairness|bandwidth|dropout|replicate|all>\n\
       experiments telemetry-report FILE [--require kind1,kind2,...]\n\
       experiments bench [--quick] [--out FILE.json|DIR]\n\
       experiments bench-compare BASE.json NEW.json [--threshold PCT]\n\
       experiments dashboard RUN.jsonl [--html FILE.html]";

/// Parses the argument list (without the program name).
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Invocation, String> {
    let mut profile = Profile::Paper;
    let mut out_dir = PathBuf::from("results");
    let mut command: Option<Command> = None;
    let mut input: Option<PathBuf> = None;
    let mut input2: Option<PathBuf> = None;
    let mut require: Vec<String> = Vec::new();
    let mut threshold = DEFAULT_COMPARE_THRESHOLD;
    let mut threshold_given = false;
    let mut html: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut no_cache = false;
    let mut resume = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => profile = Profile::Quick,
            "--out" => {
                out_dir = PathBuf::from(
                    it.next().ok_or_else(|| "--out requires a directory".to_string())?,
                );
            }
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--cache-dir requires a directory".to_string())?,
                ));
            }
            "--no-cache" => no_cache = true,
            "--resume" => resume = true,
            "--require" => {
                let list = it
                    .next()
                    .ok_or_else(|| "--require needs a comma-separated kind list".to_string())?;
                require.extend(
                    list.split(',').filter(|k| !k.is_empty()).map(str::to_string),
                );
            }
            "--threshold" => {
                let pct = it
                    .next()
                    .ok_or_else(|| "--threshold requires a percentage".to_string())?;
                let pct: f64 = pct
                    .parse()
                    .map_err(|_| format!("--threshold: not a number: {pct}"))?;
                if !(pct > 0.0 && pct.is_finite()) {
                    return Err("--threshold must be a positive percentage".to_string());
                }
                threshold = pct / 100.0;
                threshold_given = true;
            }
            "--html" => {
                html = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--html requires a file".to_string())?,
                ));
            }
            other if command.is_none() => {
                command = Some(match other {
                    "fig2" | "fig4" => Command::FigFmnist,
                    "fig3" | "fig5" => Command::FigCifar,
                    "fig6" => Command::Fig6,
                    "fig7" => Command::Fig7,
                    "headline" => Command::Headline,
                    "regret" => Command::Regret,
                    "rounding" => Command::Rounding,
                    "stepsize" => Command::Stepsize,
                    "aggregation" => Command::Aggregation,
                    "oracle" => Command::Oracle,
                    "fairness" => Command::Fairness,
                    "bandwidth" => Command::Bandwidth,
                    "dropout" => Command::Dropout,
                    "replicate" => Command::Replicate,
                    "all" => Command::All,
                    "telemetry-report" => Command::TelemetryReport,
                    "bench" => Command::Bench,
                    "bench-compare" => Command::BenchCompare,
                    "dashboard" => Command::Dashboard,
                    unknown => return Err(format!("unknown experiment: {unknown}")),
                });
            }
            other
                if matches!(
                    command,
                    Some(Command::TelemetryReport)
                        | Some(Command::BenchCompare)
                        | Some(Command::Dashboard)
                ) && input.is_none() =>
            {
                input = Some(PathBuf::from(other));
            }
            other if command == Some(Command::BenchCompare) && input2.is_none() => {
                input2 = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    let command = command.ok_or_else(|| USAGE.to_string())?;
    if command == Command::TelemetryReport && input.is_none() {
        return Err("telemetry-report requires a JSONL run-log file".to_string());
    }
    if command == Command::Dashboard && input.is_none() {
        return Err("dashboard requires a JSONL run-log file".to_string());
    }
    if command == Command::BenchCompare && (input.is_none() || input2.is_none()) {
        return Err("bench-compare requires BASE.json and NEW.json".to_string());
    }
    if command != Command::TelemetryReport && !require.is_empty() {
        return Err("--require only applies to telemetry-report".to_string());
    }
    if threshold_given && command != Command::BenchCompare {
        return Err("--threshold only applies to bench-compare".to_string());
    }
    if html.is_some() && command != Command::Dashboard {
        return Err("--html only applies to dashboard".to_string());
    }
    if !command.takes_cache() && (cache_dir.is_some() || no_cache || resume) {
        return Err("cache flags do not apply to this command".to_string());
    }
    Ok(Invocation {
        profile,
        out_dir,
        command,
        input,
        input2,
        require,
        threshold,
        html,
        cache_dir,
        no_cache,
        resume,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_to_paper_profile_and_results_dir() {
        let inv = parse(args(&["fig2"])).unwrap();
        assert_eq!(inv.profile, Profile::Paper);
        assert_eq!(inv.out_dir, PathBuf::from("results"));
        assert_eq!(inv.command, Command::FigFmnist);
    }

    #[test]
    fn quick_and_out_flags() {
        let inv = parse(args(&["--quick", "--out", "/tmp/x", "fig7"])).unwrap();
        assert_eq!(inv.profile, Profile::Quick);
        assert_eq!(inv.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(inv.command, Command::Fig7);
    }

    #[test]
    fn flag_order_is_free() {
        let inv = parse(args(&["headline", "--quick"]));
        // Command first, flags after: flags still apply.
        let inv = inv.unwrap();
        assert_eq!(inv.profile, Profile::Quick);
        assert_eq!(inv.command, Command::Headline);
    }

    #[test]
    fn fig_aliases_collapse() {
        assert_eq!(parse(args(&["fig2"])).unwrap().command, Command::FigFmnist);
        assert_eq!(parse(args(&["fig4"])).unwrap().command, Command::FigFmnist);
        assert_eq!(parse(args(&["fig3"])).unwrap().command, Command::FigCifar);
        assert_eq!(parse(args(&["fig5"])).unwrap().command, Command::FigCifar);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(args(&[])).unwrap_err().contains("usage"));
        assert!(parse(args(&["frobnicate"])).unwrap_err().contains("unknown experiment"));
        assert!(parse(args(&["--out"])).unwrap_err().contains("--out requires"));
        assert!(parse(args(&["fig2", "fig3"])).unwrap_err().contains("unexpected"));
    }

    #[test]
    fn telemetry_report_takes_a_file_and_required_kinds() {
        let inv = parse(args(&[
            "telemetry-report",
            "results/run.jsonl",
            "--require",
            "run_start,epoch,run_end",
        ]))
        .unwrap();
        assert_eq!(inv.command, Command::TelemetryReport);
        assert_eq!(inv.input, Some(PathBuf::from("results/run.jsonl")));
        assert_eq!(inv.require, vec!["run_start", "epoch", "run_end"]);
    }

    #[test]
    fn telemetry_report_rejects_bad_shapes() {
        assert!(parse(args(&["telemetry-report"]))
            .unwrap_err()
            .contains("requires a JSONL run-log file"));
        assert!(parse(args(&["telemetry-report", "a.jsonl", "b.jsonl"]))
            .unwrap_err()
            .contains("unexpected"));
        assert!(parse(args(&["fig2", "--require", "epoch"]))
            .unwrap_err()
            .contains("only applies to telemetry-report"));
        assert!(parse(args(&["telemetry-report", "a.jsonl", "--require"]))
            .unwrap_err()
            .contains("--require needs"));
    }

    #[test]
    fn cache_is_off_by_default() {
        let inv = parse(args(&["fig2"])).unwrap();
        assert_eq!(inv.cache_dir, None);
        assert!(!inv.no_cache && !inv.resume);
        assert_eq!(inv.effective_cache_dir(), None);
    }

    #[test]
    fn cache_dir_flag_enables_the_cache() {
        let inv = parse(args(&["--cache-dir", "/tmp/c", "fig2"])).unwrap();
        assert_eq!(inv.effective_cache_dir(), Some(PathBuf::from("/tmp/c")));
    }

    #[test]
    fn resume_defaults_the_cache_under_out_dir() {
        let inv = parse(args(&["--resume", "--out", "/tmp/r", "fig6"])).unwrap();
        assert_eq!(inv.effective_cache_dir(), Some(PathBuf::from("/tmp/r/cache")));
        // An explicit directory wins over the default.
        let inv = parse(args(&["--resume", "--cache-dir", "/tmp/c", "fig6"])).unwrap();
        assert_eq!(inv.effective_cache_dir(), Some(PathBuf::from("/tmp/c")));
    }

    #[test]
    fn no_cache_overrides_everything() {
        let inv =
            parse(args(&["--no-cache", "--resume", "--cache-dir", "/tmp/c", "all"])).unwrap();
        assert_eq!(inv.effective_cache_dir(), None);
    }

    #[test]
    fn cache_flags_are_rejected_for_telemetry_report() {
        for flags in [&["--resume"][..], &["--no-cache"], &["--cache-dir", "/tmp/c"]] {
            let mut a = vec!["telemetry-report", "run.jsonl"];
            a.extend_from_slice(flags);
            assert!(
                parse(args(&a)).unwrap_err().contains("do not apply"),
                "{flags:?} should be rejected"
            );
        }
        assert!(parse(args(&["fig2", "--cache-dir"]))
            .unwrap_err()
            .contains("--cache-dir requires"));
    }

    #[test]
    fn bench_resolves_out_to_file_or_directory() {
        let inv = parse(args(&["bench", "--quick"])).unwrap();
        assert_eq!(inv.command, Command::Bench);
        assert_eq!(inv.profile, Profile::Quick);
        assert_eq!(inv.bench_snapshot_path(), PathBuf::from("results/BENCH.json"));
        // --out ending in .json names the snapshot file itself...
        let inv = parse(args(&["bench", "--out", "results/BENCH_quick.json"])).unwrap();
        assert_eq!(
            inv.bench_snapshot_path(),
            PathBuf::from("results/BENCH_quick.json")
        );
        // ...anything else is a directory.
        let inv = parse(args(&["bench", "--out", "/tmp/perf"])).unwrap();
        assert_eq!(inv.bench_snapshot_path(), PathBuf::from("/tmp/perf/BENCH.json"));
    }

    #[test]
    fn bench_compare_takes_two_snapshots_and_a_threshold() {
        let inv = parse(args(&["bench-compare", "a.json", "b.json"])).unwrap();
        assert_eq!(inv.command, Command::BenchCompare);
        assert_eq!(inv.input, Some(PathBuf::from("a.json")));
        assert_eq!(inv.input2, Some(PathBuf::from("b.json")));
        assert_eq!(inv.threshold, DEFAULT_COMPARE_THRESHOLD);
        let inv =
            parse(args(&["bench-compare", "a.json", "b.json", "--threshold", "40"])).unwrap();
        assert!((inv.threshold - 0.40).abs() < 1e-12);
    }

    #[test]
    fn bench_compare_rejects_bad_shapes() {
        assert!(parse(args(&["bench-compare", "a.json"]))
            .unwrap_err()
            .contains("requires BASE.json and NEW.json"));
        assert!(parse(args(&["bench-compare", "a.json", "b.json", "c.json"]))
            .unwrap_err()
            .contains("unexpected"));
        assert!(parse(args(&["bench-compare", "a.json", "b.json", "--threshold", "x"]))
            .unwrap_err()
            .contains("not a number"));
        assert!(parse(args(&["bench-compare", "a.json", "b.json", "--threshold", "-5"]))
            .unwrap_err()
            .contains("positive percentage"));
        assert!(parse(args(&["fig2", "--threshold", "10"]))
            .unwrap_err()
            .contains("only applies to bench-compare"));
    }

    #[test]
    fn dashboard_takes_a_log_and_optional_html() {
        let inv = parse(args(&["dashboard", "run.jsonl"])).unwrap();
        assert_eq!(inv.command, Command::Dashboard);
        assert_eq!(inv.input, Some(PathBuf::from("run.jsonl")));
        assert_eq!(inv.html, None);
        let inv =
            parse(args(&["dashboard", "run.jsonl", "--html", "dash.html"])).unwrap();
        assert_eq!(inv.html, Some(PathBuf::from("dash.html")));
        assert!(parse(args(&["dashboard"]))
            .unwrap_err()
            .contains("requires a JSONL run-log file"));
        assert!(parse(args(&["fig2", "--html", "x.html"]))
            .unwrap_err()
            .contains("only applies to dashboard"));
    }

    #[test]
    fn cache_flags_are_rejected_for_observatory_commands() {
        for cmd in [
            &["bench"][..],
            &["bench-compare", "a.json", "b.json"],
            &["dashboard", "run.jsonl"],
        ] {
            let mut a = cmd.to_vec();
            a.push("--resume");
            assert!(
                parse(args(&a)).unwrap_err().contains("do not apply"),
                "{cmd:?} should reject cache flags"
            );
        }
    }

    #[test]
    fn every_named_command_parses() {
        for (name, cmd) in [
            ("fig6", Command::Fig6),
            ("regret", Command::Regret),
            ("rounding", Command::Rounding),
            ("stepsize", Command::Stepsize),
            ("aggregation", Command::Aggregation),
            ("oracle", Command::Oracle),
            ("fairness", Command::Fairness),
            ("bandwidth", Command::Bandwidth),
            ("dropout", Command::Dropout),
            ("replicate", Command::Replicate),
            ("all", Command::All),
        ] {
            assert_eq!(parse(args(&[name])).unwrap().command, cmd, "{name}");
        }
    }
}
