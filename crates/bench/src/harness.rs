//! Running the experiment matrix.

use std::path::Path;

use fedl_core::policy::PolicyKind;
use fedl_core::runner::{ExperimentRunner, RunOutcome, ScenarioConfig, SNAPSHOT_SCHEMA_VERSION};
use fedl_data::synth::TaskKind;
use fedl_json::{FromJson, ToJson, Value};
use fedl_linalg::par::par_map;
use fedl_store::{ResultCache, StoreError};
use fedl_telemetry::{log_line, Telemetry};

use crate::profile::Profile;

/// A content-addressed cache of completed figure cells, so re-invoking
/// `experiments` skips runs it has already produced.
///
/// Wraps [`fedl_store::ResultCache`]: the key text is the cell's full
/// identity (snapshot schema version + policy label + canonical
/// scenario JSON — see [`RunCache::cell_key`]) and the payload is the
/// [`RunOutcome`] JSON. Hits and misses are reported as `cache.hit` /
/// `cache.miss` events and counters on the attached [`Telemetry`].
///
/// Corrupt or incompatible entries are never fatal: they are logged,
/// counted as misses, and repaired by the fresh run's `put`.
#[derive(Debug, Clone)]
pub struct RunCache {
    cache: ResultCache,
    telemetry: Telemetry,
}

impl RunCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Ok(Self { cache: ResultCache::open(dir.as_ref())?, telemetry: Telemetry::disabled() })
    }

    /// Routes `cache.hit`/`cache.miss` events and counters through
    /// `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        self.cache.dir()
    }

    /// Canonical key text for one `(scenario, policy)` cell.
    ///
    /// This is the cache-key contract (docs/CHECKPOINT.md): the
    /// snapshot schema version, the policy label, and the canonical
    /// scenario JSON, in that order. Any change to a scenario
    /// parameter, to the policy, or to the serialized run schema
    /// produces a different key and therefore a fresh run.
    pub fn cell_key(scenario: &ScenarioConfig, policy_label: &str) -> String {
        format!(
            "fedl-cell v{SNAPSHOT_SCHEMA_VERSION}\npolicy={policy_label}\n{}",
            scenario.canonical_json()
        )
    }

    /// Looks up a completed run. `None` means a miss — absent entry,
    /// or a corrupt/incompatible one (logged and left for `put` to
    /// repair).
    pub fn get(&self, scenario: &ScenarioConfig, policy_label: &str) -> Option<RunOutcome> {
        let key = Self::cell_key(scenario, policy_label);
        let outcome = match self.cache.get(&key) {
            Ok(Some(payload)) => match RunOutcome::from_json_value(&payload) {
                Ok(outcome) => Some(outcome),
                Err(err) => {
                    log_line!(
                        "cache entry for {policy_label} has a stale schema ({err}); rerunning"
                    );
                    None
                }
            },
            Ok(None) => None,
            Err(err) => {
                log_line!("cache entry for {policy_label} is unreadable ({err}); rerunning");
                None
            }
        };
        match &outcome {
            Some(_) => {
                self.telemetry.counter("cache.hit").incr();
                self.telemetry.emit(
                    "cache.hit",
                    vec![
                        ("policy", Value::from(policy_label)),
                        ("address", Value::from(ResultCache::address(&key).as_str())),
                    ],
                );
            }
            None => {
                self.telemetry.counter("cache.miss").incr();
                self.telemetry.emit("cache.miss", vec![("policy", Value::from(policy_label))]);
            }
        }
        outcome
    }

    /// Stores a completed run. Write failures are reported and
    /// swallowed — a cold cache next time costs a re-run, aborting
    /// costs this run's results.
    pub fn put(&self, scenario: &ScenarioConfig, outcome: &RunOutcome) {
        let key = Self::cell_key(scenario, &outcome.policy);
        if let Err(err) = self.cache.put(&key, &outcome.to_json_value()) {
            log_line!("failed to cache run for {}: {err}", outcome.policy);
        }
    }
}

/// One cell of the evaluation matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Benchmark task.
    pub task: TaskKind,
    /// IID or non-IID split.
    pub iid: bool,
    /// Selection policy.
    pub policy: PolicyKind,
    /// Long-term budget.
    pub budget: f64,
}

/// A completed cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell that ran.
    pub cell: Cell,
    /// The recorded run.
    pub outcome: RunOutcome,
}

/// Runs one scenario/policy pair.
pub fn run_cell(scenario: ScenarioConfig, cell: Cell) -> CellResult {
    run_cell_cached(scenario, cell, None)
}

/// Runs one scenario/policy pair, consulting `cache` first when given.
/// A hit returns the stored [`RunOutcome`] without building the
/// environment; a miss runs fresh and stores the result.
pub fn run_cell_cached(
    scenario: ScenarioConfig,
    cell: Cell,
    cache: Option<&RunCache>,
) -> CellResult {
    if let Some(cache) = cache {
        if let Some(outcome) = cache.get(&scenario, cell.policy.label()) {
            return CellResult { cell, outcome };
        }
    }
    let mut runner = ExperimentRunner::new(scenario.clone(), cell.policy);
    let outcome = runner.run();
    if let Some(cache) = cache {
        cache.put(&scenario, &outcome);
    }
    CellResult { cell, outcome }
}

/// Runs all four policies for `(task, iid)` at `budget`, in parallel,
/// on the *same* environment sample path (same seed).
pub fn run_policy_matrix(
    profile: Profile,
    task: TaskKind,
    iid: bool,
    budget: f64,
    seed: u64,
) -> Vec<CellResult> {
    run_policy_matrix_cached(profile, task, iid, budget, seed, None)
}

/// [`run_policy_matrix`] with an optional result cache.
pub fn run_policy_matrix_cached(
    profile: Profile,
    task: TaskKind,
    iid: bool,
    budget: f64,
    seed: u64,
    cache: Option<&RunCache>,
) -> Vec<CellResult> {
    par_map(&PolicyKind::ALL, |&policy| {
        let scenario = profile.scenario(task, iid, budget, seed);
        run_cell_cached(scenario, Cell { task, iid, policy, budget }, cache)
    })
}

/// Runs the full budget grid for `(task, iid)` across all policies.
pub fn run_budget_sweep(profile: Profile, task: TaskKind, iid: bool, seed: u64) -> Vec<CellResult> {
    run_budget_sweep_cached(profile, task, iid, seed, None)
}

/// [`run_budget_sweep`] with an optional result cache.
pub fn run_budget_sweep_cached(
    profile: Profile,
    task: TaskKind,
    iid: bool,
    seed: u64,
    cache: Option<&RunCache>,
) -> Vec<CellResult> {
    let grid = profile.budget_grid();
    let cells: Vec<(f64, PolicyKind)> =
        grid.iter().flat_map(|&b| PolicyKind::ALL.iter().map(move |&p| (b, p))).collect();
    par_map(&cells, |&(budget, policy)| {
        let scenario = profile.scenario(task, iid, budget, seed);
        run_cell_cached(scenario, Cell { task, iid, policy, budget }, cache)
    })
}

/// Mean and sample standard deviation of one metric across replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single replication).
    pub std: f64,
}

impl MeanStd {
    /// Computes mean/std of `values` (NaNs excluded).
    ///
    /// # Panics
    /// Panics when no finite value remains.
    pub fn of(values: &[f64]) -> MeanStd {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        assert!(!finite.is_empty(), "no finite values to summarize");
        let n = finite.len() as f64;
        let mean = finite.iter().sum::<f64>() / n;
        let var = if finite.len() < 2 {
            0.0
        } else {
            finite.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)
        };
        MeanStd { mean, std: var.sqrt() }
    }
}

/// Per-policy replication summary.
#[derive(Debug, Clone)]
pub struct ReplicationSummary {
    /// Policy legend name.
    pub policy: String,
    /// Final accuracy across seeds.
    pub final_accuracy: MeanStd,
    /// Total simulated time across seeds.
    pub total_time: MeanStd,
    /// Time to the accuracy target across seeds (seeds that miss the
    /// target are excluded; `None` when all miss).
    pub time_to_target: Option<MeanStd>,
    /// Number of replications.
    pub seeds: usize,
}

/// Runs the four-policy matrix at each seed and summarizes per policy —
/// the mean ± std presentation a rigorous evaluation reports.
pub fn run_replicated(
    profile: Profile,
    task: TaskKind,
    iid: bool,
    budget: f64,
    seeds: &[u64],
    accuracy_target: f64,
) -> Vec<ReplicationSummary> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let all: Vec<Vec<CellResult>> =
        par_map(seeds, |&seed| run_policy_matrix(profile, task, iid, budget, seed));
    PolicyKind::ALL
        .iter()
        .map(|&policy| {
            let name = policy.label().to_string();
            let runs: Vec<&CellResult> = all
                .iter()
                .flat_map(|cells| cells.iter().filter(|c| c.outcome.policy == name))
                .collect();
            let acc: Vec<f64> = runs.iter().map(|r| r.outcome.final_accuracy()).collect();
            let time: Vec<f64> = runs.iter().map(|r| r.outcome.total_sim_time()).collect();
            let hits: Vec<f64> =
                runs.iter().filter_map(|r| r.outcome.time_to_accuracy(accuracy_target)).collect();
            ReplicationSummary {
                policy: name,
                final_accuracy: MeanStd::of(&acc),
                total_time: MeanStd::of(&time),
                time_to_target: (!hits.is_empty()).then(|| MeanStd::of(&hits)),
                seeds: seeds.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let ms = MeanStd::of(&[1.0, 3.0]);
        assert!((ms.mean - 2.0).abs() < 1e-12);
        assert!((ms.std - (2.0f64).sqrt()).abs() < 1e-12);
        let single = MeanStd::of(&[5.0]);
        assert_eq!(single.std, 0.0);
        // NaNs are excluded.
        let with_nan = MeanStd::of(&[2.0, f64::NAN, 4.0]);
        assert!((with_nan.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no finite values")]
    fn mean_std_rejects_all_nan() {
        let _ = MeanStd::of(&[f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "no finite values")]
    fn mean_std_rejects_zero_replications() {
        let _ = MeanStd::of(&[]);
    }

    #[test]
    fn mean_std_over_many_replications() {
        // n = 5 values with a known sample variance.
        let ms = MeanStd::of(&[2.0, 4.0, 4.0, 4.0, 6.0]);
        assert!((ms.mean - 4.0).abs() < 1e-12);
        assert!((ms.std - 2.0f64.sqrt()).abs() < 1e-12);
        // Infinities are excluded alongside NaNs.
        let filtered = MeanStd::of(&[1.0, f64::INFINITY, 3.0]);
        assert!((filtered.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn replication_summarizes_all_policies() {
        let summaries =
            run_replicated(Profile::Quick, TaskKind::FmnistLike, true, 200.0, &[1, 2], 0.2);
        assert_eq!(summaries.len(), 4);
        for s in &summaries {
            assert_eq!(s.seeds, 2);
            assert!(s.final_accuracy.mean > 0.0);
            assert!(s.total_time.mean > 0.0);
            assert!(s.final_accuracy.std >= 0.0);
        }
    }

    #[test]
    fn same_seed_reruns_are_identical() {
        // Pins the cache-key contract: everything a run depends on is
        // in (profile scenario, policy, seed), so re-running the same
        // cell must reproduce the outcome bit-for-bit — which is what
        // makes serving it from the result cache sound.
        let a = run_policy_matrix(Profile::Quick, TaskKind::FmnistLike, true, 250.0, 11);
        let b = run_policy_matrix(Profile::Quick, TaskKind::FmnistLike, true, 250.0, 11);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.outcome, y.outcome, "{:?} diverged across reruns", x.cell.policy);
        }
    }

    #[test]
    fn warm_cache_serves_identical_outcomes_and_reports_hits() {
        let dir = std::env::temp_dir().join("fedl_bench_cache_tests").join("warm");
        std::fs::remove_dir_all(&dir).ok();
        let (tel, _handle) = Telemetry::in_memory();
        let cache = RunCache::open(&dir).unwrap().with_telemetry(tel.clone());
        let cold = run_policy_matrix_cached(
            Profile::Quick,
            TaskKind::FmnistLike,
            true,
            250.0,
            5,
            Some(&cache),
        );
        assert_eq!(tel.counter("cache.miss").value(), 4);
        assert_eq!(tel.counter("cache.hit").value(), 0);
        let warm = run_policy_matrix_cached(
            Profile::Quick,
            TaskKind::FmnistLike,
            true,
            250.0,
            5,
            Some(&cache),
        );
        assert_eq!(tel.counter("cache.hit").value(), 4);
        for (x, y) in cold.iter().zip(&warm) {
            assert_eq!(x.outcome, y.outcome);
        }
        // A different seed is a different key: all misses again.
        run_policy_matrix_cached(
            Profile::Quick,
            TaskKind::FmnistLike,
            true,
            250.0,
            6,
            Some(&cache),
        );
        assert_eq!(tel.counter("cache.miss").value(), 8);
    }

    #[test]
    fn corrupt_cache_entries_fall_back_to_a_fresh_run() {
        let dir = std::env::temp_dir().join("fedl_bench_cache_tests").join("corrupt");
        std::fs::remove_dir_all(&dir).ok();
        let (tel, _handle) = Telemetry::in_memory();
        let cache = RunCache::open(&dir).unwrap().with_telemetry(tel.clone());
        let scenario = Profile::Quick.scenario(TaskKind::FmnistLike, true, 250.0, 9);
        let cell = Cell {
            task: TaskKind::FmnistLike,
            iid: true,
            policy: PolicyKind::FedAvg,
            budget: 250.0,
        };
        let first = run_cell_cached(scenario.clone(), cell.clone(), Some(&cache));
        // Damage the single entry on disk.
        let entry = std::fs::read_dir(cache.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.path().extension().is_some_and(|x| x == "fedlstore"))
            .expect("one cache entry written")
            .path();
        std::fs::write(&entry, "fedl-store v1 kind=cache-entry crc=0000000000000000\n{}").unwrap();
        let again = run_cell_cached(scenario, cell, Some(&cache));
        // The damaged entry read as a miss (not a crash), the run
        // reproduced the outcome, and the entry was repaired.
        assert_eq!(tel.counter("cache.miss").value(), 2);
        assert_eq!(tel.counter("cache.hit").value(), 0);
        assert_eq!(first.outcome, again.outcome);
    }

    #[test]
    fn quick_matrix_runs_all_policies() {
        let results = run_policy_matrix(Profile::Quick, TaskKind::FmnistLike, true, 300.0, 3);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(!r.outcome.epochs.is_empty(), "{:?} ran nothing", r.cell.policy);
            assert_eq!(r.outcome.budget, 300.0);
        }
        // All four policies faced the same availability sample path, so
        // their first-epoch environments agree on epoch indexing.
        let names: Vec<&str> = results.iter().map(|r| r.outcome.policy.as_str()).collect();
        assert!(names.contains(&"FedL") && names.contains(&"Pow-d"));
    }
}
