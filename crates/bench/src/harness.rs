//! Running the experiment matrix.

use fedl_core::policy::PolicyKind;
use fedl_core::runner::{ExperimentRunner, RunOutcome, ScenarioConfig};
use fedl_data::synth::TaskKind;
use fedl_linalg::par::par_map;

use crate::profile::Profile;

/// One cell of the evaluation matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Benchmark task.
    pub task: TaskKind,
    /// IID or non-IID split.
    pub iid: bool,
    /// Selection policy.
    pub policy: PolicyKind,
    /// Long-term budget.
    pub budget: f64,
}

/// A completed cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell that ran.
    pub cell: Cell,
    /// The recorded run.
    pub outcome: RunOutcome,
}

/// Runs one scenario/policy pair.
pub fn run_cell(scenario: ScenarioConfig, cell: Cell) -> CellResult {
    let mut runner = ExperimentRunner::new(scenario, cell.policy);
    let outcome = runner.run();
    CellResult { cell, outcome }
}

/// Runs all four policies for `(task, iid)` at `budget`, in parallel,
/// on the *same* environment sample path (same seed).
pub fn run_policy_matrix(
    profile: Profile,
    task: TaskKind,
    iid: bool,
    budget: f64,
    seed: u64,
) -> Vec<CellResult> {
    par_map(&PolicyKind::ALL, |&policy| {
        let scenario = profile.scenario(task, iid, budget, seed);
        run_cell(scenario, Cell { task, iid, policy, budget })
    })
}

/// Runs the full budget grid for `(task, iid)` across all policies.
pub fn run_budget_sweep(
    profile: Profile,
    task: TaskKind,
    iid: bool,
    seed: u64,
) -> Vec<CellResult> {
    let grid = profile.budget_grid();
    let cells: Vec<(f64, PolicyKind)> = grid
        .iter()
        .flat_map(|&b| PolicyKind::ALL.iter().map(move |&p| (b, p)))
        .collect();
    par_map(&cells, |&(budget, policy)| {
        let scenario = profile.scenario(task, iid, budget, seed);
        run_cell(scenario, Cell { task, iid, policy, budget })
    })
}

/// Mean and sample standard deviation of one metric across replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single replication).
    pub std: f64,
}

impl MeanStd {
    /// Computes mean/std of `values` (NaNs excluded).
    ///
    /// # Panics
    /// Panics when no finite value remains.
    pub fn of(values: &[f64]) -> MeanStd {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        assert!(!finite.is_empty(), "no finite values to summarize");
        let n = finite.len() as f64;
        let mean = finite.iter().sum::<f64>() / n;
        let var = if finite.len() < 2 {
            0.0
        } else {
            finite.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)
        };
        MeanStd { mean, std: var.sqrt() }
    }
}

/// Per-policy replication summary.
#[derive(Debug, Clone)]
pub struct ReplicationSummary {
    /// Policy legend name.
    pub policy: String,
    /// Final accuracy across seeds.
    pub final_accuracy: MeanStd,
    /// Total simulated time across seeds.
    pub total_time: MeanStd,
    /// Time to the accuracy target across seeds (seeds that miss the
    /// target are excluded; `None` when all miss).
    pub time_to_target: Option<MeanStd>,
    /// Number of replications.
    pub seeds: usize,
}

/// Runs the four-policy matrix at each seed and summarizes per policy —
/// the mean ± std presentation a rigorous evaluation reports.
pub fn run_replicated(
    profile: Profile,
    task: TaskKind,
    iid: bool,
    budget: f64,
    seeds: &[u64],
    accuracy_target: f64,
) -> Vec<ReplicationSummary> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let all: Vec<Vec<CellResult>> =
        par_map(seeds, |&seed| run_policy_matrix(profile, task, iid, budget, seed));
    PolicyKind::ALL
        .iter()
        .map(|&policy| {
            let name = policy.label().to_string();
            let runs: Vec<&CellResult> = all
                .iter()
                .flat_map(|cells| cells.iter().filter(|c| c.outcome.policy == name))
                .collect();
            let acc: Vec<f64> = runs.iter().map(|r| r.outcome.final_accuracy()).collect();
            let time: Vec<f64> = runs.iter().map(|r| r.outcome.total_sim_time()).collect();
            let hits: Vec<f64> = runs
                .iter()
                .filter_map(|r| r.outcome.time_to_accuracy(accuracy_target))
                .collect();
            ReplicationSummary {
                policy: name,
                final_accuracy: MeanStd::of(&acc),
                total_time: MeanStd::of(&time),
                time_to_target: (!hits.is_empty()).then(|| MeanStd::of(&hits)),
                seeds: seeds.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let ms = MeanStd::of(&[1.0, 3.0]);
        assert!((ms.mean - 2.0).abs() < 1e-12);
        assert!((ms.std - (2.0f64).sqrt()).abs() < 1e-12);
        let single = MeanStd::of(&[5.0]);
        assert_eq!(single.std, 0.0);
        // NaNs are excluded.
        let with_nan = MeanStd::of(&[2.0, f64::NAN, 4.0]);
        assert!((with_nan.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no finite values")]
    fn mean_std_rejects_all_nan() {
        let _ = MeanStd::of(&[f64::NAN]);
    }

    #[test]
    fn replication_summarizes_all_policies() {
        let summaries = run_replicated(
            Profile::Quick,
            TaskKind::FmnistLike,
            true,
            200.0,
            &[1, 2],
            0.2,
        );
        assert_eq!(summaries.len(), 4);
        for s in &summaries {
            assert_eq!(s.seeds, 2);
            assert!(s.final_accuracy.mean > 0.0);
            assert!(s.total_time.mean > 0.0);
            assert!(s.final_accuracy.std >= 0.0);
        }
    }

    #[test]
    fn quick_matrix_runs_all_policies() {
        let results =
            run_policy_matrix(Profile::Quick, TaskKind::FmnistLike, true, 300.0, 3);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(!r.outcome.epochs.is_empty(), "{:?} ran nothing", r.cell.policy);
            assert_eq!(r.outcome.budget, 300.0);
        }
        // All four policies faced the same availability sample path, so
        // their first-epoch environments agree on epoch indexing.
        let names: Vec<&str> =
            results.iter().map(|r| r.outcome.policy.as_str()).collect();
        assert!(names.contains(&"FedL") && names.contains(&"Pow-d"));
    }
}
