//! CLI over the figure/ablation entry points. See [`fedl_bench::cli`]
//! for the grammar; this binary only dispatches.

use std::process::ExitCode;

use fedl_bench::cli::{self, Command};
use fedl_bench::experiments;
use fedl_bench::harness::RunCache;
use fedl_bench::history::{self, BenchHistory, HistoryEntry};
use fedl_bench::perf::{self, BenchSnapshot};
use fedl_data::synth::TaskKind;
use fedl_telemetry::{dashboard, log_line, RunLog, Telemetry};

/// Loads a JSONL run log, prints the per-phase timing report, and fails
/// when any `--require`d event kind is absent.
fn telemetry_report(invocation: &cli::Invocation) -> ExitCode {
    let path = invocation.input.as_deref().expect("parser guarantees a file");
    let log = match RunLog::read(path) {
        Ok(log) => log,
        Err(err) => {
            eprintln!("failed to load run log {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };
    print!("{}", log.render_report());
    let required: Vec<&str> = invocation.require.iter().map(String::as_str).collect();
    let missing = log.missing_kinds(&required);
    if !missing.is_empty() {
        eprintln!("run log is missing required event kinds: {}", missing.join(", "));
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Runs the perf-snapshot suite and writes `BENCH.json`.
fn bench(invocation: &cli::Invocation) -> ExitCode {
    let snapshot = perf::run_suite(invocation.profile);
    let path = invocation.bench_snapshot_path();
    if let Err(err) = snapshot.write(&path) {
        eprintln!("failed to write {}: {err}", path.display());
        return ExitCode::FAILURE;
    }
    log_line!("wrote perf snapshot: {} ({} kernels)", path.display(), snapshot.kernels.len());
    ExitCode::SUCCESS
}

/// Compares two `BENCH.json` snapshots; non-zero exit on regression so
/// `scripts/ci.sh` can gate on it.
fn bench_compare(invocation: &cli::Invocation) -> ExitCode {
    let load = |path: &std::path::Path| BenchSnapshot::read(path);
    let base = invocation.input.as_deref().expect("parser guarantees BASE.json");
    let new = invocation.input2.as_deref().expect("parser guarantees NEW.json");
    let (base, new) = match (load(base), load(new)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match perf::compare(&base, &new, invocation.threshold) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    if report.has_regression() {
        eprintln!(
            "perf regression: at least one kernel slowed down beyond {:.0} % and its noise band",
            invocation.threshold * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Writes `text` to `path`, creating parent directories.
fn write_html(path: &std::path::Path, text: String) -> ExitCode {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(err) = std::fs::create_dir_all(dir) {
                eprintln!("failed to create {}: {err}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(err) = std::fs::write(path, text) {
        eprintln!("failed to write {}: {err}", path.display());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Renders the per-client attribution dashboard (ASCII, plus a
/// self-contained HTML file with `--html`). Two or more run logs
/// switch to the multi-run overlay mode: per-policy summary table,
/// overlaid regret curves and budget burn-down.
fn dashboard(invocation: &cli::Invocation) -> ExitCode {
    let mut runs: Vec<(String, RunLog)> = Vec::new();
    for path in &invocation.inputs {
        let log = match RunLog::read(path) {
            Ok(log) => log,
            Err(err) => {
                eprintln!("failed to load run log {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let stem = path
            .file_stem()
            .map_or_else(|| path.display().to_string(), |s| s.to_string_lossy().into_owned());
        runs.push((stem, log));
    }
    let html = if runs.len() == 1 {
        let (_, log) = &runs[0];
        print!("{}", log.render_client_table());
        dashboard::render_html(log)
    } else {
        match dashboard::render_overlay_table(&runs) {
            Ok(table) => print!("{table}"),
            Err(err) => {
                eprintln!("{err}");
                return ExitCode::FAILURE;
            }
        }
        match dashboard::render_overlay_html(&runs) {
            Ok(html) => html,
            Err(err) => {
                eprintln!("{err}");
                return ExitCode::FAILURE;
            }
        }
    };
    if let Some(html_path) = &invocation.html {
        if write_html(html_path, html) == ExitCode::FAILURE {
            return ExitCode::FAILURE;
        }
        log_line!("wrote dashboard: {}", html_path.display());
    }
    ExitCode::SUCCESS
}

/// Merges a coordinator run log with its per-worker sibling logs into
/// one causally-ordered cross-process trace: linkage rate, per-epoch
/// waterfall, and critical-path attribution (ASCII, plus a
/// self-contained HTML file with `--html`).
fn trace_report(invocation: &cli::Invocation) -> ExitCode {
    let mut runs: Vec<(String, RunLog)> = Vec::new();
    for path in &invocation.inputs {
        let log = match RunLog::read(path) {
            Ok(log) => log,
            Err(err) => {
                eprintln!("failed to load run log {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let stem = path
            .file_stem()
            .map_or_else(|| path.display().to_string(), |s| s.to_string_lossy().into_owned());
        runs.push((stem, log));
    }
    match fedl_telemetry::render_trace_report(&runs) {
        Ok(text) => print!("{text}"),
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(html_path) = &invocation.html {
        let html = match fedl_telemetry::render_trace_html(&runs) {
            Ok(html) => html,
            Err(err) => {
                eprintln!("{err}");
                return ExitCode::FAILURE;
            }
        };
        if write_html(html_path, html) == ExitCode::FAILURE {
            return ExitCode::FAILURE;
        }
        log_line!("wrote trace report: {}", html_path.display());
    }
    ExitCode::SUCCESS
}

/// The `bench-history` actions: append a snapshot to the history file,
/// render the trend report, or gate a snapshot against the rolling
/// baseline (docs/OBSERVATORY.md).
fn bench_history(invocation: &cli::Invocation) -> ExitCode {
    let history_path = invocation.history_path();
    match invocation.command {
        Command::BenchHistoryAppend => {
            let snap_path = invocation.input.as_deref().expect("parser guarantees a snapshot");
            let snapshot = match BenchSnapshot::read(snap_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let entry = HistoryEntry::capture(snapshot);
            if let Err(err) = BenchHistory::append(&history_path, &entry) {
                eprintln!("failed to append to {}: {err}", history_path.display());
                return ExitCode::FAILURE;
            }
            log_line!(
                "appended snapshot ({} kernels, {}, commit {}) to {}",
                entry.snapshot.kernels.len(),
                entry.fingerprint,
                entry.commit,
                history_path.display()
            );
            ExitCode::SUCCESS
        }
        Command::BenchHistoryReport => {
            let history = match BenchHistory::load(&history_path) {
                Ok(h) => h,
                Err(err) => {
                    eprintln!("failed to read {}: {err}", history_path.display());
                    return ExitCode::FAILURE;
                }
            };
            print!("{}", history::render_trend_table(&history, history::DEFAULT_BASELINE_WINDOW));
            if let Some(html_path) = &invocation.html {
                let html = history::render_trend_html(&history);
                if write_html(html_path, html) == ExitCode::FAILURE {
                    return ExitCode::FAILURE;
                }
                log_line!("wrote trend report: {}", html_path.display());
            }
            ExitCode::SUCCESS
        }
        Command::BenchHistoryGate => {
            let snap_path = invocation.input.as_deref().expect("parser guarantees a snapshot");
            let snapshot = match BenchSnapshot::read(snap_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let history = match BenchHistory::load(&history_path) {
                Ok(h) => h,
                Err(err) => {
                    eprintln!("failed to read {}: {err}", history_path.display());
                    return ExitCode::FAILURE;
                }
            };
            let report =
                history::gate(&history, &snapshot, invocation.window, invocation.threshold);
            print!("{}", report.render());
            if report.passes() {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "perf regression: at least one kernel slowed down beyond {:.0} % and \
                     its noise band vs the rolling baseline",
                    invocation.threshold * 100.0
                );
                ExitCode::FAILURE
            }
        }
        _ => unreachable!("bench_history only handles the bench-history actions"),
    }
}

/// Maps a service subcommand result onto an exit code.
fn service_exit(result: Result<(), String>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The federation service has its own flag grammar (fedl-serve);
    // route its subcommands before the figure-CLI parser.
    match args.first().map(String::as_str) {
        Some("serve") => return service_exit(fedl_serve::cli::run_serve(&args[1..])),
        Some("loadgen") => return service_exit(fedl_serve::cli::run_loadgen_cli(&args[1..])),
        Some("dist") => return service_exit(fedl_dist::cli::run_dist(&args[1..])),
        Some("dist-worker") => return service_exit(fedl_dist::cli::run_dist_worker(&args[1..])),
        Some("stats") => return service_exit(fedl_serve::cli::run_stats(&args[1..])),
        _ => {}
    }
    let invocation = match cli::parse(args) {
        Ok(inv) => inv,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match invocation.command {
        Command::TelemetryReport => return telemetry_report(&invocation),
        Command::Bench => return bench(&invocation),
        Command::BenchCompare => return bench_compare(&invocation),
        Command::BenchHistoryAppend | Command::BenchHistoryReport | Command::BenchHistoryGate => {
            return bench_history(&invocation)
        }
        Command::Dashboard => return dashboard(&invocation),
        Command::TraceReport => return trace_report(&invocation),
        _ => {}
    }
    let (profile, out_dir) = (invocation.profile, invocation.out_dir.clone());
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    log_line!(
        "profile: {:?} (M={}, n={}), output: {}",
        profile,
        profile.num_clients(),
        profile.min_participants(),
        out_dir.display()
    );

    // The result cache (--cache-dir/--resume): completed figure cells
    // are served from disk, with cache.hit/cache.miss telemetry
    // streamed to <out_dir>/cache_run.jsonl for telemetry-report.
    let cache_telemetry = invocation.effective_cache_dir().map(|dir| {
        let tel = Telemetry::to_file(out_dir.join("cache_run.jsonl"))
            .expect("create cache telemetry log");
        let cache = RunCache::open(&dir).expect("open result cache").with_telemetry(tel.clone());
        log_line!("result cache: {}", cache.dir().display());
        (cache, tel)
    });
    let cache = cache_telemetry.as_ref().map(|(c, _)| c);

    match invocation.command {
        Command::FigFmnist => {
            experiments::fig_time_and_round(profile, TaskKind::FmnistLike, &out_dir, cache);
        }
        Command::FigCifar => {
            experiments::fig_time_and_round(profile, TaskKind::CifarLike, &out_dir, cache);
        }
        Command::Fig6 => {
            experiments::fig_budget(profile, TaskKind::FmnistLike, &out_dir, cache);
        }
        Command::Fig7 => {
            experiments::fig_budget(profile, TaskKind::CifarLike, &out_dir, cache);
        }
        Command::Headline => experiments::headline(profile, &out_dir, cache),
        Command::Regret => experiments::regret(profile, &out_dir),
        Command::Rounding => experiments::rounding_ablation(profile),
        Command::Stepsize => experiments::stepsize_ablation(profile),
        Command::Aggregation => experiments::aggregation_ablation(profile),
        Command::Oracle => experiments::oracle_comparison(profile),
        Command::Fairness => experiments::fairness_study(profile),
        Command::Bandwidth => experiments::bandwidth_study(profile),
        Command::Dropout => experiments::dropout_study(profile),
        Command::Replicate => experiments::replication_study(profile),
        Command::All => {
            let mut results =
                experiments::fig_time_and_round(profile, TaskKind::FmnistLike, &out_dir, cache);
            results.extend(experiments::fig_time_and_round(
                profile,
                TaskKind::CifarLike,
                &out_dir,
                cache,
            ));
            experiments::headline_from(&results, &out_dir);
            experiments::fig_budget(profile, TaskKind::FmnistLike, &out_dir, cache);
            experiments::fig_budget(profile, TaskKind::CifarLike, &out_dir, cache);
            experiments::regret(profile, &out_dir);
            experiments::rounding_ablation(profile);
            experiments::stepsize_ablation(profile);
            experiments::aggregation_ablation(profile);
            experiments::oracle_comparison(profile);
            experiments::fairness_study(profile);
            experiments::bandwidth_study(profile);
            experiments::dropout_study(profile);
            experiments::replication_study(profile);
        }
        Command::TelemetryReport
        | Command::Bench
        | Command::BenchCompare
        | Command::BenchHistoryAppend
        | Command::BenchHistoryReport
        | Command::BenchHistoryGate
        | Command::Dashboard
        | Command::TraceReport => {
            unreachable!("dispatched before the experiment match")
        }
    }
    if let Some((_, tel)) = &cache_telemetry {
        tel.emit_metrics();
        tel.flush();
    }
    ExitCode::SUCCESS
}
