//! Terminal curve rendering for the figure harness.
//!
//! The harness's primary outputs are CSV series; this module adds an
//! at-a-glance ASCII rendering of the same curves so the paper's figure
//! *shapes* (who leads early, where the crossovers fall) are visible
//! straight from the terminal, no plotting stack required.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// Points, in any order (sorted internally by x).
    pub points: Vec<(f64, f64)>,
}

/// Glyphs assigned to series in order.
const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Renders the series into a `width x height` character canvas with a
/// shared linear scale, returning the multi-line string (with a legend
/// and axis ranges). Series beyond the glyph supply reuse glyphs.
///
/// # Panics
/// Panics if `width`/`height` are below 8/4 (unreadably small canvases
/// are caller bugs).
pub fn render(series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 4, "canvas too small: {width}x{height}");
    let finite_points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if finite_points.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &finite_points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }

    let mut canvas = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        let mut pts: Vec<(f64, f64)> =
            s.points.iter().copied().filter(|(x, y)| x.is_finite() && y.is_finite()).collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite xs"));
        for (x, y) in pts {
            let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let row = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            canvas[row][col.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    for (r, line) in canvas.iter().enumerate() {
        let label = if r == 0 {
            format!("{y_max:>9.3} ┤")
        } else if r == height - 1 {
            format!("{y_min:>9.3} ┤")
        } else {
            format!("{:>9} │", "")
        };
        out.push_str(&label);
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>10}└{}\n{:>11}{:<.3}{}{:>.3}\n",
        "",
        "─".repeat(width),
        "",
        x_min,
        " ".repeat(width.saturating_sub(14)),
        x_max
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(si, s)| format!("{} {}", GLYPHS[si % GLYPHS.len()], s.name))
        .collect();
    out.push_str(&format!("{:>11}{}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str, pts: &[(f64, f64)]) -> Series {
        Series { name: name.into(), points: pts.to_vec() }
    }

    #[test]
    fn renders_extremes_on_border_rows() {
        let s = series("a", &[(0.0, 0.0), (10.0, 1.0)]);
        let plot = render(&[s], 20, 6);
        let lines: Vec<&str> = plot.lines().collect();
        // Max y labels the first row, min y the last canvas row.
        assert!(lines[0].contains("1.000"));
        assert!(lines[5].contains("0.000"));
        // Top row holds the high point, bottom row the low point.
        assert!(lines[0].contains('*'));
        assert!(lines[5].contains('*'));
    }

    #[test]
    fn legend_lists_all_series_with_distinct_glyphs() {
        let plot = render(&[series("FedL", &[(0.0, 1.0)]), series("FedAvg", &[(0.0, 2.0)])], 16, 5);
        assert!(plot.contains("* FedL"));
        assert!(plot.contains("o FedAvg"));
    }

    #[test]
    fn empty_input_is_graceful() {
        assert_eq!(render(&[series("e", &[])], 16, 5), "(no data)\n");
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let plot = render(
            &[series("a", &[(0.0, 0.5), (f64::NAN, 1.0), (1.0, f64::INFINITY), (2.0, 0.7)])],
            16,
            5,
        );
        assert!(plot.contains('*'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let plot = render(&[series("flat", &[(0.0, 3.0), (5.0, 3.0)])], 16, 5);
        assert!(plot.contains('*'));
    }

    #[test]
    #[should_panic(expected = "canvas too small")]
    fn rejects_tiny_canvas() {
        let _ = render(&[series("a", &[(0.0, 0.0)])], 2, 2);
    }
}
