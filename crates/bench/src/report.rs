//! Result emission: CSV series for plotting, JSON for machines, and the
//! human-readable tables the paper reports in §6.2 prose.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use fedl_telemetry::log_line;

use crate::harness::CellResult;

/// Writes the per-epoch series of every cell as one tidy CSV
/// (`policy,task,dist,budget,epoch,round,sim_time,spent,accuracy,test_loss,global_loss`).
pub fn write_series_csv(path: &Path, results: &[CellResult]) -> io::Result<()> {
    let mut out = String::from(
        "policy,task,dist,budget,epoch,round,sim_time,spent,accuracy,test_loss,global_loss\n",
    );
    for r in results {
        let dist = if r.cell.iid { "iid" } else { "non-iid" };
        let mut round = 0usize;
        for e in &r.outcome.epochs {
            round += e.iterations;
            out.push_str(&format!(
                "{},{:?},{},{},{},{},{:.4},{:.2},{:.4},{:.4},{:.4}\n",
                r.outcome.policy,
                r.cell.task,
                dist,
                r.cell.budget,
                e.epoch,
                round,
                e.sim_time,
                e.spent,
                e.accuracy,
                e.test_loss,
                e.global_loss,
            ));
        }
    }
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, out)
}

/// Writes the raw outcomes as JSON for downstream tooling. The layout
/// (entry fields, 2-space pretty-printing) matches what the original
/// serde_json pipeline emitted, so existing result files stay readable
/// by the same consumers.
pub fn write_json(path: &Path, results: &[CellResult]) -> io::Result<()> {
    use fedl_json::{obj, ToJson, Value};
    let entries = Value::Arr(
        results
            .iter()
            .map(|r| {
                obj(vec![
                    ("policy", r.outcome.policy.to_json_value()),
                    ("task", format!("{:?}", r.cell.task).to_json_value()),
                    ("iid", r.cell.iid.to_json_value()),
                    ("budget", r.cell.budget.to_json_value()),
                    ("outcome", r.outcome.to_json_value()),
                ])
            })
            .collect(),
    );
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, entries.to_json_pretty())
}

/// Accuracy each policy had reached by `time` simulated seconds
/// (last record at or before `time`; 0 if none).
pub fn accuracy_at_time(result: &CellResult, time: f64) -> f64 {
    result
        .outcome
        .epochs
        .iter()
        .take_while(|e| e.sim_time <= time)
        .last()
        .map_or(0.0, |e| e.accuracy)
}

/// Prints the accuracy-vs-time table for one figure panel.
pub fn print_time_table(title: &str, results: &[CellResult], times: &[f64], targets: &[f64]) {
    log_line!("\n── {title} ──");
    let mut header = format!("{:<8}", "policy");
    for t in times {
        let _ = write!(header, "{:>12}", format!("acc@{t:.0}s"));
    }
    for a in targets {
        let _ = write!(header, "{:>14}", format!("t→{:.0}% (s)", a * 100.0));
    }
    log_line!("{header}");
    for r in results {
        let mut row = format!("{:<8}", r.outcome.policy);
        for &t in times {
            let _ = write!(row, "{:>12.3}", accuracy_at_time(r, t));
        }
        for &a in targets {
            match r.outcome.time_to_accuracy(a) {
                Some(t) => {
                    let _ = write!(row, "{:>14.1}", t);
                }
                None => {
                    let _ = write!(row, "{:>14}", "—");
                }
            }
        }
        log_line!("{row}");
    }
}

/// Prints the accuracy-vs-round table for one figure panel.
pub fn print_round_table(title: &str, results: &[CellResult], rounds: &[usize], targets: &[f64]) {
    log_line!("\n── {title} ──");
    let mut header = format!("{:<8}", "policy");
    for r in rounds {
        let _ = write!(header, "{:>12}", format!("acc@r{r}"));
    }
    for a in targets {
        let _ = write!(header, "{:>14}", format!("r→{:.0}%", a * 100.0));
    }
    log_line!("{header}");
    for res in results {
        let by_round = res.outcome.accuracy_by_round();
        let mut row = format!("{:<8}", res.outcome.policy);
        for &target_round in rounds {
            let acc = by_round
                .iter()
                .take_while(|(r, _)| *r <= target_round)
                .last()
                .map_or(0.0, |(_, a)| *a);
            let _ = write!(row, "{:>12.3}", acc);
        }
        for &a in targets {
            match res.outcome.rounds_to_accuracy(a) {
                Some(r) => {
                    let _ = write!(row, "{:>14}", r);
                }
                None => {
                    let _ = write!(row, "{:>14}", "—");
                }
            }
        }
        log_line!("{row}");
    }
}

/// Prints the budget-impact table (final global loss per budget).
pub fn print_budget_table(title: &str, results: &[CellResult], budgets: &[f64]) {
    log_line!("\n── {title} ──");
    let mut header = format!("{:<8}", "policy");
    for b in budgets {
        let _ = write!(header, "{:>12}", format!("C={b:.0}"));
    }
    log_line!("{header}   (final global loss)");
    for policy in ["FedL", "FedCS", "FedAvg", "Pow-d"] {
        let mut row = format!("{:<8}", policy);
        for &b in budgets {
            let cell = results
                .iter()
                .find(|r| r.outcome.policy == policy && (r.cell.budget - b).abs() < 1e-9);
            match cell {
                Some(c) => {
                    let _ = write!(row, "{:>12.3}", c.outcome.final_loss());
                }
                None => {
                    let _ = write!(row, "{:>12}", "—");
                }
            }
        }
        log_line!("{row}");
    }
}

/// The paper's headline metric: FedL's completion-time saving relative
/// to the best baseline at the given accuracy target. Returns `None`
/// when FedL (or every baseline) misses the target.
pub fn fedl_time_saving(results: &[CellResult], target: f64) -> Option<f64> {
    let fedl = results.iter().find(|r| r.outcome.policy == "FedL")?;
    let t_fedl = fedl.outcome.time_to_accuracy(target)?;
    let best_baseline = results
        .iter()
        .filter(|r| r.outcome.policy != "FedL")
        .filter_map(|r| r.outcome.time_to_accuracy(target))
        .fold(f64::INFINITY, f64::min);
    if best_baseline.is_finite() {
        Some(1.0 - t_fedl / best_baseline)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Cell;
    use fedl_core::policy::PolicyKind;
    use fedl_core::runner::{EpochRecord, RunOutcome};
    use fedl_data::synth::TaskKind;

    fn fake(policy: &str, times: &[(f64, f64)]) -> CellResult {
        let epochs = times
            .iter()
            .enumerate()
            .map(|(i, &(t, acc))| EpochRecord {
                epoch: i,
                cohort_size: 3,
                iterations: 2,
                sim_time: t,
                spent: t * 10.0,
                accuracy: acc,
                test_loss: 1.0 - acc,
                global_loss: 1.0 - acc,
            })
            .collect();
        CellResult {
            cell: Cell {
                task: TaskKind::FmnistLike,
                iid: true,
                policy: PolicyKind::FedL,
                budget: 100.0,
            },
            outcome: RunOutcome { policy: policy.into(), budget: 100.0, epochs },
        }
    }

    #[test]
    fn accuracy_at_time_takes_last_before() {
        let r = fake("FedL", &[(1.0, 0.2), (2.0, 0.4), (4.0, 0.6)]);
        assert_eq!(accuracy_at_time(&r, 0.5), 0.0);
        assert_eq!(accuracy_at_time(&r, 2.5), 0.4);
        assert_eq!(accuracy_at_time(&r, 10.0), 0.6);
    }

    #[test]
    fn saving_computed_against_best_baseline() {
        let results = vec![
            fake("FedL", &[(1.0, 0.2), (2.0, 0.7)]),
            fake("FedAvg", &[(1.0, 0.1), (8.0, 0.7)]),
            fake("Pow-d", &[(1.0, 0.1), (4.0, 0.7)]),
        ];
        // FedL reaches 0.7 at t=2; best baseline (Pow-d) at t=4 -> 50%.
        let saving = fedl_time_saving(&results, 0.7).unwrap();
        assert!((saving - 0.5).abs() < 1e-9);
    }

    #[test]
    fn saving_none_when_target_missed() {
        let results = vec![fake("FedL", &[(1.0, 0.2)]), fake("FedAvg", &[(1.0, 0.9)])];
        assert!(fedl_time_saving(&results, 0.8).is_none());
    }

    #[test]
    fn csv_writes_header_and_rows() {
        let dir = std::env::temp_dir().join("fedl_report_test");
        let path = dir.join("series.csv");
        let results = vec![fake("FedL", &[(1.0, 0.2), (2.0, 0.3)])];
        write_series_csv(&path, &results).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("policy,task,dist,budget"));
        assert_eq!(content.lines().count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
