//! A minimal measured-iterations benchmark harness — the offline,
//! zero-dependency replacement for criterion.
//!
//! Each benchmark closure is warmed up, calibrated to a fixed wall-clock
//! budget, then timed over several samples of many iterations; the
//! median per-iteration time (and the best sample, as a noise floor) is
//! printed in a fixed-width table. Usage from a `harness = false` bench
//! target:
//!
//! ```no_run
//! use fedl_bench::timing::{bench, group};
//!
//! group("gemm");
//! bench("square/32", || 2 + 2);
//! ```
//!
//! Set `FEDL_BENCH_FAST=1` to shrink the measurement budget (useful for
//! smoke-testing that every bench target still runs).

use std::time::{Duration, Instant};

use fedl_telemetry::log_line;

/// Number of timed samples per benchmark.
const SAMPLES: usize = 5;

fn target_budget() -> Duration {
    if std::env::var_os("FEDL_BENCH_FAST").is_some() {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(400)
    }
}

/// Prints a group header (visual separator between benchmark families).
pub fn group(name: &str) {
    log_line!("\n── {name} ──");
}

pub(crate) fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// One benchmark's raw timings: per-iteration nanoseconds for each
/// measured sample (ascending), plus the calibrated batch size. This is
/// what [`bench()`] prints and what the `experiments bench` perf-snapshot
/// suite serialises into `BENCH.json` (see [`crate::perf`]).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Per-iteration time of each sample, nanoseconds, sorted ascending.
    pub per_iter_ns: Vec<f64>,
    /// Iterations per sample (calibrated to the measurement budget).
    pub iters: u64,
}

impl Measurement {
    /// Mean per-iteration time over the samples.
    pub fn mean_ns(&self) -> f64 {
        self.per_iter_ns.iter().sum::<f64>() / self.per_iter_ns.len().max(1) as f64
    }

    /// Population standard deviation of the per-sample times.
    pub fn std_ns(&self) -> f64 {
        let mean = self.mean_ns();
        let var = self.per_iter_ns.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>()
            / self.per_iter_ns.len().max(1) as f64;
        var.sqrt()
    }

    /// Fastest sample (the noise floor).
    pub fn min_ns(&self) -> f64 {
        self.per_iter_ns.first().copied().unwrap_or(f64::NAN)
    }

    /// Median sample.
    pub fn median_ns(&self) -> f64 {
        self.per_iter_ns.get(self.per_iter_ns.len() / 2).copied().unwrap_or(f64::NAN)
    }
}

/// Warms up, calibrates, and times `f` over a fixed number of samples
/// inside `budget` of wall clock, returning the raw per-sample timings.
pub fn measure_with_budget<R>(budget: Duration, mut f: impl FnMut() -> R) -> Measurement {
    // Warm-up (fills caches, triggers lazy initialization).
    for _ in 0..2 {
        std::hint::black_box(f());
    }
    // Calibrate: double the batch size until one batch is long enough to
    // time reliably, then size batches to fit the per-sample budget.
    let mut iters: u64 = 1;
    let per_iter_ns = loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(10) || iters >= 1 << 24 {
            break (elapsed.as_nanos().max(1) as f64 / iters as f64).max(1.0);
        }
        iters *= 2;
    };
    let sample_budget_ns = budget.as_nanos() as f64 / SAMPLES as f64;
    let iters = ((sample_budget_ns / per_iter_ns) as u64).max(1);

    let mut times: Vec<f64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        times.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    Measurement { per_iter_ns: times, iters }
}

/// [`measure_with_budget`] under the default (env-tunable) budget.
pub fn measure<R>(f: impl FnMut() -> R) -> Measurement {
    measure_with_budget(target_budget(), f)
}

/// Times `f` and prints one table row: median per-iteration time over
/// a handful of samples, plus the fastest sample as the noise floor.
pub fn bench<R>(label: &str, f: impl FnMut() -> R) {
    let m = measure(f);
    log_line!(
        "{label:<44} {:>12}/iter   (best {:>12}, {}×{SAMPLES} iters)",
        fmt_ns(m.median_ns()),
        fmt_ns(m.min_ns()),
        m.iters
    );
}

/// Times `f` with a per-iteration element count and prints throughput
/// next to the latency (the criterion `Throughput::Elements` analogue).
pub fn bench_throughput<R>(label: &str, elements: u64, mut f: impl FnMut() -> R) {
    let start = Instant::now();
    std::hint::black_box(f());
    let one = start.elapsed().as_nanos().max(1) as f64;
    let rate = elements as f64 / (one / 1e9);
    bench(&format!("{label} [{:.2} Melem/s]", rate / 1e6), f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_300.0), "12.30 µs");
        assert_eq!(fmt_ns(12_300_000.0), "12.30 ms");
        assert_eq!(fmt_ns(2_000_000_000.0), "2.000 s");
    }

    #[test]
    fn bench_runs_closure() {
        // Smoke: the harness itself must not panic on a trivial closure.
        std::env::set_var("FEDL_BENCH_FAST", "1");
        let mut count = 0u64;
        bench("unit/trivial", || {
            count += 1;
            count
        });
        assert!(count > 0);
    }

    #[test]
    fn measurement_statistics_are_consistent() {
        let m = Measurement { per_iter_ns: vec![1.0, 2.0, 3.0, 4.0, 10.0], iters: 7 };
        assert!((m.mean_ns() - 4.0).abs() < 1e-12);
        assert_eq!(m.min_ns(), 1.0);
        assert_eq!(m.median_ns(), 3.0);
        // population std of [1,2,3,4,10] around 4: sqrt((9+4+1+0+36)/5)
        assert!((m.std_ns() - (50.0f64 / 5.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn measure_returns_sorted_positive_samples() {
        let m = measure_with_budget(Duration::from_millis(20), || {
            std::hint::black_box(3u64.wrapping_mul(17))
        });
        assert_eq!(m.per_iter_ns.len(), SAMPLES);
        assert!(m.iters >= 1);
        assert!(m.per_iter_ns.windows(2).all(|w| w[0] <= w[1]));
        assert!(m.per_iter_ns.iter().all(|&t| t > 0.0));
    }
}
