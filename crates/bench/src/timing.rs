//! A minimal measured-iterations benchmark harness — the offline,
//! zero-dependency replacement for criterion.
//!
//! Each benchmark closure is warmed up, calibrated to a fixed wall-clock
//! budget, then timed over several samples of many iterations; the
//! median per-iteration time (and the best sample, as a noise floor) is
//! printed in a fixed-width table. Usage from a `harness = false` bench
//! target:
//!
//! ```no_run
//! use fedl_bench::timing::{bench, group};
//!
//! group("gemm");
//! bench("square/32", || 2 + 2);
//! ```
//!
//! Set `FEDL_BENCH_FAST=1` to shrink the measurement budget (useful for
//! smoke-testing that every bench target still runs).

use std::time::{Duration, Instant};

use fedl_telemetry::log_line;

/// Number of timed samples per benchmark.
const SAMPLES: usize = 5;

fn target_budget() -> Duration {
    if std::env::var_os("FEDL_BENCH_FAST").is_some() {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(400)
    }
}

/// Prints a group header (visual separator between benchmark families).
pub fn group(name: &str) {
    log_line!("\n── {name} ──");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Times `f` and prints one table row: median per-iteration time over
/// a handful of samples, plus the fastest sample as the noise floor.
pub fn bench<R>(label: &str, mut f: impl FnMut() -> R) {
    let budget = target_budget();
    // Warm-up (fills caches, triggers lazy initialization).
    for _ in 0..2 {
        std::hint::black_box(f());
    }
    // Calibrate: double the batch size until one batch is long enough to
    // time reliably, then size batches to fit the per-sample budget.
    let mut iters: u64 = 1;
    let per_iter_ns = loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(10) || iters >= 1 << 24 {
            break (elapsed.as_nanos().max(1) as f64 / iters as f64).max(1.0);
        }
        iters *= 2;
    };
    let sample_budget_ns = budget.as_nanos() as f64 / SAMPLES as f64;
    let iters = ((sample_budget_ns / per_iter_ns) as u64).max(1);

    let mut times: Vec<f64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        times.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = times[times.len() / 2];
    let best = times[0];
    log_line!(
        "{label:<44} {:>12}/iter   (best {:>12}, {iters}×{SAMPLES} iters)",
        fmt_ns(median),
        fmt_ns(best)
    );
}

/// Times `f` with a per-iteration element count and prints throughput
/// next to the latency (the criterion `Throughput::Elements` analogue).
pub fn bench_throughput<R>(label: &str, elements: u64, mut f: impl FnMut() -> R) {
    let start = Instant::now();
    std::hint::black_box(f());
    let one = start.elapsed().as_nanos().max(1) as f64;
    let rate = elements as f64 / (one / 1e9);
    bench(&format!("{label} [{:.2} Melem/s]", rate / 1e6), f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_300.0), "12.30 µs");
        assert_eq!(fmt_ns(12_300_000.0), "12.30 ms");
        assert_eq!(fmt_ns(2_000_000_000.0), "2.000 s");
    }

    #[test]
    fn bench_runs_closure() {
        // Smoke: the harness itself must not panic on a trivial closure.
        std::env::set_var("FEDL_BENCH_FAST", "1");
        let mut count = 0u64;
        bench("unit/trivial", || {
            count += 1;
            count
        });
        assert!(count > 0);
    }
}
