//! Experiment sizing profiles.
//!
//! The paper's setting (§6.1) is 100 clients over FMNIST/CIFAR-10; the
//! `Paper` profile mirrors that scale on the synthetic substitutes. The
//! `Quick` profile keeps every mechanism but shrinks the federation so
//! the full figure suite runs in minutes (used by CI and `--quick`).

use fedl_core::runner::{ModelArch, ScenarioConfig};
use fedl_data::synth::TaskKind;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// §6.1 scale: M = 100 clients, n = 10 participants.
    Paper,
    /// Reduced scale for fast iteration: M = 20, n = 4.
    Quick,
}

impl Profile {
    /// Number of clients `M`.
    pub fn num_clients(self) -> usize {
        match self {
            Profile::Paper => 100,
            Profile::Quick => 20,
        }
    }

    /// Participation floor `n`.
    pub fn min_participants(self) -> usize {
        match self {
            Profile::Paper => 10,
            Profile::Quick => 4,
        }
    }

    /// Budget used for the time/round figures (2–5): generous enough
    /// that the time axis, not the wallet, shapes the curves.
    pub fn figure_budget(self) -> f64 {
        match self {
            Profile::Paper => 30_000.0,
            Profile::Quick => 2_500.0,
        }
    }

    /// Budget grid for the budget-impact figures (6–7).
    pub fn budget_grid(self) -> Vec<f64> {
        match self {
            Profile::Paper => vec![3_000.0, 6_000.0, 12_000.0, 18_000.0, 24_000.0],
            Profile::Quick => vec![400.0, 800.0, 1_600.0, 2_400.0],
        }
    }

    /// Epoch safety cap.
    pub fn max_epochs(self) -> usize {
        match self {
            Profile::Paper => 500,
            Profile::Quick => 150,
        }
    }

    /// Global training-pool size.
    pub fn train_size(self) -> usize {
        match self {
            Profile::Paper => 6_000,
            Profile::Quick => 1_500,
        }
    }

    /// Test-set size.
    pub fn test_size(self) -> usize {
        match self {
            Profile::Paper => 1_000,
            Profile::Quick => 400,
        }
    }

    /// Builds the scenario for `(task, iid)` at this profile with the
    /// given budget.
    pub fn scenario(self, task: TaskKind, iid: bool, budget: f64, seed: u64) -> ScenarioConfig {
        let mut s = match task {
            TaskKind::FmnistLike => {
                ScenarioConfig::small_fmnist(self.num_clients(), budget, self.min_participants())
            }
            TaskKind::CifarLike => {
                ScenarioConfig::small_cifar(self.num_clients(), budget, self.min_participants())
            }
        }
        .with_seed(seed);
        s.train_size = self.train_size();
        s.test_size = self.test_size();
        s.max_epochs = self.max_epochs();
        if task == TaskKind::CifarLike {
            // The harder task needs a bigger head; keep it modest.
            s.model = ModelArch::Mlp { hidden: vec![96], l2: 0.0005 };
            // The harder task plateaus at a higher loss.
            s.fedl.theta = 1.6;
        }
        if !iid {
            s = s.non_iid();
        }
        s
    }
}

/// Accuracy targets mirrored from the paper's §6.2 prose.
pub fn accuracy_targets(task: TaskKind) -> &'static [f64] {
    match task {
        TaskKind::FmnistLike => &[0.5, 0.6, 0.7],
        TaskKind::CifarLike => &[0.35, 0.45, 0.55],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_section_6_1() {
        assert_eq!(Profile::Paper.num_clients(), 100);
        assert_eq!(Profile::Paper.min_participants(), 10);
    }

    #[test]
    fn scenarios_build_for_all_cells() {
        for profile in [Profile::Quick, Profile::Paper] {
            for task in [TaskKind::FmnistLike, TaskKind::CifarLike] {
                for iid in [true, false] {
                    let s = profile.scenario(task, iid, 500.0, 1);
                    assert_eq!(s.env.num_clients, profile.num_clients());
                    assert_eq!(s.budget, 500.0);
                    assert_eq!(s.partition.is_non_iid(), !iid);
                }
            }
        }
    }

    #[test]
    fn budget_grid_is_increasing() {
        for profile in [Profile::Quick, Profile::Paper] {
            let grid = profile.budget_grid();
            assert!(grid.windows(2).all(|w| w[1] > w[0]));
        }
    }
}
