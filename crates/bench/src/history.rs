//! Benchmark history: longitudinal storage of `BENCH.json` snapshots
//! plus the rolling-baseline regression gate and trend reports
//! (`experiments bench-history`, DESIGN.md row **S13**, schema in
//! docs/OBSERVATORY.md).
//!
//! Where [`crate::perf::compare`] gates one snapshot against one other
//! snapshot, this module maintains `BENCH_HISTORY.jsonl` — one
//! [`HistoryEntry`] per line, each carrying a machine/config
//! fingerprint and the commit it was measured at — and gates a new
//! snapshot against the **median of the last K compatible entries**,
//! so CI fails on drift, not on single-pair luck. Parsing is lenient
//! like `RunLog`: malformed lines are skipped and counted, and an
//! empty or fully corrupt history degrades to "no baseline, gate
//! passes with a warning".

use std::io;
use std::path::Path;

use fedl_json::{obj, read_field, FromJson, ToJson, Value};

use crate::perf::{self, BenchSnapshot, CompareReport, KernelStats};
use crate::timing;

/// Version of the `BENCH_HISTORY.jsonl` entry envelope. Entries of
/// other versions still parse (the file stays readable) but are never
/// folded into a rolling baseline.
pub const HISTORY_SCHEMA_VERSION: u32 = 1;

/// Default `K` for the rolling baseline: the median of the last 5
/// compatible entries.
pub const DEFAULT_BASELINE_WINDOW: usize = 5;

/// One line of `BENCH_HISTORY.jsonl`: a perf snapshot plus the context
/// needed to decide which other entries it may be compared against.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// [`HISTORY_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Machine/config fingerprint ([`fingerprint_of`]); only entries
    /// with identical fingerprints are comparable.
    pub fingerprint: String,
    /// Commit the snapshot was measured at (`FEDL_COMMIT`, else
    /// `git rev-parse`, else `"unknown"`) — provenance, never gated on.
    pub commit: String,
    /// The snapshot itself.
    pub snapshot: BenchSnapshot,
}

impl HistoryEntry {
    /// Wraps a freshly measured snapshot with this machine's
    /// fingerprint and the current commit.
    pub fn capture(snapshot: BenchSnapshot) -> Self {
        Self {
            schema_version: HISTORY_SCHEMA_VERSION,
            fingerprint: fingerprint_of(&snapshot),
            commit: current_commit(),
            snapshot,
        }
    }
}

impl ToJson for HistoryEntry {
    fn to_json_value(&self) -> Value {
        obj(vec![
            ("schema_version", (self.schema_version as usize).to_json_value()),
            ("fingerprint", self.fingerprint.to_json_value()),
            ("commit", self.commit.to_json_value()),
            ("snapshot", self.snapshot.to_json_value()),
        ])
    }
}

impl FromJson for HistoryEntry {
    fn from_json_value(v: &Value) -> Result<Self, fedl_json::Error> {
        let schema_version: usize = read_field(v, "schema_version")?;
        Ok(Self {
            schema_version: schema_version as u32,
            fingerprint: read_field(v, "fingerprint")?,
            commit: read_field(v, "commit")?,
            snapshot: BenchSnapshot::from_json_value(v.field("snapshot")?)?,
        })
    }
}

/// The comparability fingerprint of a snapshot: OS, architecture,
/// hardware parallelism, suite profile, and the `BENCH.json` schema
/// version. Two snapshots with different fingerprints were measured
/// under different conditions and must never be folded into one
/// baseline.
pub fn fingerprint_of(snap: &BenchSnapshot) -> String {
    format!(
        "{}-{}/t{}/{}/bench-v{}",
        std::env::consts::OS,
        std::env::consts::ARCH,
        snap.threads,
        snap.profile,
        snap.schema_version
    )
}

/// Best-effort commit id: `FEDL_COMMIT` when set (CI), else a short
/// `git rev-parse HEAD`, else `"unknown"`. Provenance only — nothing
/// gates on it.
fn current_commit() -> String {
    if let Ok(c) = std::env::var("FEDL_COMMIT") {
        let c = c.trim().to_string();
        if !c.is_empty() {
            return c;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// A parsed `BENCH_HISTORY.jsonl` file.
#[derive(Debug, Clone)]
pub struct BenchHistory {
    entries: Vec<HistoryEntry>,
    skipped: usize,
}

/// The rolling baseline [`BenchHistory::rolling_baseline`] derives:
/// a synthetic snapshot whose per-kernel statistics are the medians
/// over the window entries.
#[derive(Debug, Clone)]
pub struct RollingBaseline {
    /// The synthetic median snapshot.
    pub snapshot: BenchSnapshot,
    /// How many history entries the medians were taken over (≤ K).
    pub entries: usize,
}

impl BenchHistory {
    /// An empty history (no file yet — first `append` creates it).
    pub fn empty() -> Self {
        Self { entries: Vec::new(), skipped: 0 }
    }

    /// Parses JSONL text: one [`HistoryEntry`] per non-blank line.
    /// Malformed lines — a truncated tail, a hand-edited typo — are
    /// skipped and counted, never fatal, exactly like `RunLog`.
    pub fn parse(text: &str) -> Self {
        let mut entries = Vec::new();
        let mut skipped = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match Value::parse(line).and_then(|v| HistoryEntry::from_json_value(&v)) {
                Ok(entry) => entries.push(entry),
                Err(_) => skipped += 1,
            }
        }
        Self { entries, skipped }
    }

    /// Reads a history file; a file that does not exist yet is an
    /// empty history, not an error.
    pub fn load(path: &Path) -> io::Result<Self> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Self::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Self::empty()),
            Err(e) => Err(e),
        }
    }

    /// Appends one entry as a single JSONL line (creating parent
    /// directories and the file itself as needed).
    pub fn append(path: &Path, entry: &HistoryEntry) -> io::Result<()> {
        use std::io::Write as _;
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        writeln!(file, "{}", entry.to_json_value().to_json())
    }

    /// The parsed entries, oldest first (file order).
    pub fn entries(&self) -> &[HistoryEntry] {
        &self.entries
    }

    /// Number of malformed lines [`BenchHistory::parse`] skipped.
    pub fn skipped_lines(&self) -> usize {
        self.skipped
    }

    /// The entries comparable to `fingerprint` (same fingerprint, same
    /// envelope version), oldest first.
    pub fn compatible(&self, fingerprint: &str) -> Vec<&HistoryEntry> {
        self.entries
            .iter()
            .filter(|e| e.schema_version == HISTORY_SCHEMA_VERSION && e.fingerprint == fingerprint)
            .collect()
    }

    /// The rolling baseline for `fingerprint`: per-kernel medians over
    /// the last `window` compatible entries. `None` when no compatible
    /// entry exists (a fresh machine, a bumped schema, an empty file).
    pub fn rolling_baseline(&self, fingerprint: &str, window: usize) -> Option<RollingBaseline> {
        let compatible = self.compatible(fingerprint);
        if compatible.is_empty() || window == 0 {
            return None;
        }
        let tail: Vec<&HistoryEntry> =
            compatible.iter().rev().take(window).rev().copied().collect();
        let newest = tail.last().expect("tail is non-empty");
        // Kernel order: the newest entry's order, then any name only
        // older window entries know about.
        let mut names: Vec<String> =
            newest.snapshot.kernels.iter().map(|k| k.name.clone()).collect();
        for e in &tail {
            for k in &e.snapshot.kernels {
                if !names.contains(&k.name) {
                    names.push(k.name.clone());
                }
            }
        }
        let kernels = names
            .iter()
            .map(|name| {
                let series: Vec<&KernelStats> =
                    tail.iter().filter_map(|e| e.snapshot.kernel(name)).collect();
                KernelStats {
                    name: name.clone(),
                    mean_ns: median(series.iter().map(|k| k.mean_ns)),
                    std_ns: median(series.iter().map(|k| k.std_ns)),
                    min_ns: median(series.iter().map(|k| k.min_ns)),
                    iters: median(series.iter().map(|k| k.iters as f64)).round() as u64,
                    samples: median(series.iter().map(|k| k.samples as f64)).round() as usize,
                }
            })
            .collect();
        Some(RollingBaseline {
            snapshot: BenchSnapshot {
                schema_version: newest.snapshot.schema_version,
                profile: newest.snapshot.profile.clone(),
                threads: newest.snapshot.threads,
                kernels,
            },
            entries: tail.len(),
        })
    }
}

/// Median of a (possibly empty) series; even counts average the two
/// middle values.
fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// The result of gating one snapshot against the rolling baseline.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Fingerprint of the gated snapshot.
    pub fingerprint: String,
    /// How many history entries formed the baseline (0 = no baseline).
    pub baseline_entries: usize,
    /// The per-kernel comparison, absent when no baseline existed.
    pub compare: Option<CompareReport>,
    /// Degradations that did not fail the gate (empty history,
    /// skipped lines, fingerprint mismatches).
    pub warnings: Vec<String>,
}

impl GateReport {
    /// `true` when CI should pass: no baseline at all, or a comparison
    /// with no regressed kernel.
    pub fn passes(&self) -> bool {
        self.compare.as_ref().is_none_or(|c| !c.has_regression())
    }

    /// Human-readable rendering (warnings, then the comparison table).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for w in &self.warnings {
            out.push_str(&format!("warning: {w}\n"));
        }
        match &self.compare {
            None => out.push_str(&format!(
                "no baseline for fingerprint {} — gate passes with warning\n",
                self.fingerprint
            )),
            Some(c) => {
                out.push_str(&format!(
                    "rolling baseline: median of {} entr{} for {}\n",
                    self.baseline_entries,
                    if self.baseline_entries == 1 { "y" } else { "ies" },
                    self.fingerprint
                ));
                out.push_str(&c.render());
            }
        }
        out
    }
}

/// Gates `new` against the rolling baseline of its fingerprint:
/// median of the last `window` compatible entries, compared with the
/// same noise-aware rule as `bench-compare`
/// ([`perf::compare`]: regression ⇔ mean slowdown beyond `threshold`
/// *and* disjoint mean±2σ bands). No compatible history — empty file,
/// corrupt file, new machine, bumped schema — passes with a warning:
/// a gate that fails on its own cold start would just be deleted.
pub fn gate(
    history: &BenchHistory,
    new: &BenchSnapshot,
    window: usize,
    threshold: f64,
) -> GateReport {
    let fingerprint = fingerprint_of(new);
    let mut warnings = Vec::new();
    if history.skipped_lines() > 0 {
        warnings.push(format!("skipped {} malformed history line(s)", history.skipped_lines()));
    }
    if history.entries.is_empty() {
        warnings.push("history holds no entries".to_string());
    } else if history.compatible(&fingerprint).is_empty() {
        warnings.push(format!(
            "history holds {} entr{} but none matches fingerprint {fingerprint}",
            history.entries.len(),
            if history.entries.len() == 1 { "y" } else { "ies" },
        ));
    }
    let Some(baseline) = history.rolling_baseline(&fingerprint, window) else {
        return GateReport { fingerprint, baseline_entries: 0, compare: None, warnings };
    };
    match perf::compare(&baseline.snapshot, new, threshold) {
        Ok(compare) => GateReport {
            fingerprint,
            baseline_entries: baseline.entries,
            compare: Some(compare),
            warnings,
        },
        Err(e) => {
            // Unreachable in practice (the fingerprint pins the schema
            // version), but a broken comparison must degrade, not gate.
            warnings.push(format!("baseline comparison failed: {e}"));
            GateReport { fingerprint, baseline_entries: 0, compare: None, warnings }
        }
    }
}

// ── trend report ────────────────────────────────────────────────────

/// Trend chart geometry (pixels), mirroring the dashboard's layout.
const PLOT_W: f64 = 560.0;
const PLOT_H: f64 = 140.0;
const M_LEFT: f64 = 80.0;
const M_TOP: f64 = 10.0;
const M_RIGHT: f64 = 10.0;
const M_BOTTOM: f64 = 26.0;

fn sanitize_id(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
        .collect()
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Groups history entries by fingerprint, preserving first-appearance
/// order; within a group entries stay oldest-first.
fn fingerprint_groups(history: &BenchHistory) -> Vec<(String, Vec<&HistoryEntry>)> {
    let mut groups: Vec<(String, Vec<&HistoryEntry>)> = Vec::new();
    for e in history.entries() {
        match groups.iter_mut().find(|(fp, _)| *fp == e.fingerprint) {
            Some((_, v)) => v.push(e),
            None => groups.push((e.fingerprint.clone(), vec![e])),
        }
    }
    groups
}

/// The per-kernel trend table: one section per fingerprint group, one
/// row per kernel with first/last/median means and the drift ratio of
/// the newest entry against the K-window median.
pub fn render_trend_table(history: &BenchHistory, window: usize) -> String {
    let mut out = String::new();
    if history.skipped_lines() > 0 {
        out.push_str(&format!("skipped {} malformed history line(s)\n", history.skipped_lines()));
    }
    let groups = fingerprint_groups(history);
    if groups.is_empty() {
        out.push_str("history holds no entries — nothing to report\n");
        return out;
    }
    for (fp, entries) in &groups {
        let commits: Vec<&str> = entries.iter().map(|e| e.commit.as_str()).collect();
        out.push_str(&format!(
            "── {} — {} entr{} ({}) ──\n",
            fp,
            entries.len(),
            if entries.len() == 1 { "y" } else { "ies" },
            commits.join(" → ")
        ));
        out.push_str(&format!(
            "{:<34} {:>5} {:>12} {:>12} {:>12} {:>12}\n",
            "kernel", "runs", "first", "last", "median(K)", "last/median"
        ));
        let newest = entries.last().expect("group is non-empty");
        let mut names: Vec<&str> =
            newest.snapshot.kernels.iter().map(|k| k.name.as_str()).collect();
        for e in entries {
            for k in &e.snapshot.kernels {
                if !names.contains(&k.name.as_str()) {
                    names.push(&k.name);
                }
            }
        }
        for name in names {
            let series: Vec<&KernelStats> =
                entries.iter().filter_map(|e| e.snapshot.kernel(name)).collect();
            let tail_median = median(series.iter().rev().take(window.max(1)).map(|k| k.mean_ns));
            let first = series.first().expect("kernel appears at least once");
            let last = series.last().expect("kernel appears at least once");
            let ratio = if tail_median > 0.0 {
                format!("{:.2}×", last.mean_ns / tail_median)
            } else {
                "—".to_string()
            };
            out.push_str(&format!(
                "{:<34} {:>5} {:>12} {:>12} {:>12} {:>12}\n",
                name,
                series.len(),
                timing::fmt_ns(first.mean_ns),
                timing::fmt_ns(last.mean_ns),
                timing::fmt_ns(tail_median),
                ratio
            ));
        }
    }
    out
}

/// One kernel's trend chart: mean over entry index as a polyline, the
/// mean±2σ noise band as a translucent polygon behind it.
fn trend_chart(id: &str, title: &str, series: &[(f64, f64)]) -> String {
    let w = M_LEFT + PLOT_W + M_RIGHT;
    let h = M_TOP + PLOT_H + M_BOTTOM;
    let mut out = format!(
        r#"<svg id="{id}" viewBox="0 0 {w} {h}" width="{w}" height="{h}" xmlns="http://www.w3.org/2000/svg">"#
    );
    let finite: Vec<(usize, f64, f64)> = series
        .iter()
        .enumerate()
        .filter(|(_, (m, s))| m.is_finite() && s.is_finite())
        .map(|(i, &(m, s))| (i, m, s))
        .collect();
    if finite.is_empty() {
        out.push_str(&format!(
            r#"<text x="{}" y="{}" text-anchor="middle" class="empty">no data</text></svg>"#,
            M_LEFT + PLOT_W / 2.0,
            M_TOP + PLOT_H / 2.0
        ));
        return out;
    }
    let y_min = finite.iter().map(|&(_, m, s)| m - 2.0 * s).fold(f64::INFINITY, f64::min);
    let y_max = finite.iter().map(|&(_, m, s)| m + 2.0 * s).fold(f64::NEG_INFINITY, f64::max);
    let (y_min, y_max) = if y_max > y_min { (y_min, y_max) } else { (y_min - 1.0, y_max + 1.0) };
    let x_max = (series.len().max(2) - 1) as f64;
    let sx = |i: usize| M_LEFT + i as f64 / x_max * PLOT_W;
    let sy = |y: f64| M_TOP + (1.0 - (y - y_min) / (y_max - y_min)) * PLOT_H;
    out.push_str(&format!(
        r#"<rect x="{M_LEFT}" y="{M_TOP}" width="{PLOT_W}" height="{PLOT_H}" class="frame"/>"#
    ));
    // ±2σ band: upper edge left→right, lower edge right→left.
    if finite.len() >= 2 {
        let upper: Vec<String> = finite
            .iter()
            .map(|&(i, m, s)| format!("{:.1},{:.1}", sx(i), sy(m + 2.0 * s)))
            .collect();
        let lower: Vec<String> = finite
            .iter()
            .rev()
            .map(|&(i, m, s)| format!("{:.1},{:.1}", sx(i), sy(m - 2.0 * s)))
            .collect();
        out.push_str(&format!(
            r##"<polygon fill="#2563eb" fill-opacity="0.15" stroke="none" points="{} {}"/>"##,
            upper.join(" "),
            lower.join(" ")
        ));
    }
    if finite.len() >= 2 {
        let path: Vec<String> =
            finite.iter().map(|&(i, m, _)| format!("{:.1},{:.1}", sx(i), sy(m))).collect();
        out.push_str(&format!(
            r##"<polyline fill="none" stroke="#2563eb" stroke-width="1.5" points="{}"/>"##,
            path.join(" ")
        ));
    }
    for &(i, m, _) in &finite {
        out.push_str(&format!(
            r##"<circle cx="{:.1}" cy="{:.1}" r="2.5" fill="#2563eb"/>"##,
            sx(i),
            sy(m)
        ));
    }
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">{}</text>"#,
        M_LEFT - 4.0,
        M_TOP + 10.0,
        timing::fmt_ns(y_max)
    ));
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">{}</text>"#,
        M_LEFT - 4.0,
        M_TOP + PLOT_H,
        timing::fmt_ns(y_min)
    ));
    out.push_str(&format!(
        r#"<text x="{M_LEFT}" y="{:.1}" class="tick">run 0</text>"#,
        M_TOP + PLOT_H + 16.0
    ));
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" text-anchor="end" class="tick">run {}</text>"#,
        M_LEFT + PLOT_W,
        M_TOP + PLOT_H + 16.0,
        series.len() - 1
    ));
    out.push_str(&format!(
        r#"<text x="{:.1}" y="{:.1}" class="title">{}</text>"#,
        M_LEFT + 6.0,
        M_TOP + 14.0,
        escape(title)
    ));
    out.push_str("</svg>");
    out
}

/// Renders the self-contained HTML trend report: per fingerprint
/// group, one inline-SVG chart per kernel (`id="trend-<kernel>"`, or
/// `trend-g<i>-<kernel>` when several fingerprints share the file)
/// showing the mean trend line over runs with its ±2σ noise band.
/// No scripts, no external assets — same contract as the dashboard.
pub fn render_trend_html(history: &BenchHistory) -> String {
    let mut body = String::new();
    if history.skipped_lines() > 0 {
        body.push_str(&format!(
            "<p class=\"warn\">skipped {} malformed history line(s)</p>",
            history.skipped_lines()
        ));
    }
    let groups = fingerprint_groups(history);
    if groups.is_empty() {
        body.push_str("<p>history holds no entries — nothing to chart</p>");
    }
    let multi = groups.len() > 1;
    for (gi, (fp, entries)) in groups.iter().enumerate() {
        body.push_str(&format!(
            "<h2>{} — {} entr{}</h2>",
            escape(fp),
            entries.len(),
            if entries.len() == 1 { "y" } else { "ies" }
        ));
        let newest = entries.last().expect("group is non-empty");
        for kernel in &newest.snapshot.kernels {
            let series: Vec<(f64, f64)> = entries
                .iter()
                .map(|e| {
                    e.snapshot
                        .kernel(&kernel.name)
                        .map_or((f64::NAN, f64::NAN), |k| (k.mean_ns, k.std_ns))
                })
                .collect();
            let id = if multi {
                format!("trend-g{gi}-{}", sanitize_id(&kernel.name))
            } else {
                format!("trend-{}", sanitize_id(&kernel.name))
            };
            body.push_str(&format!(
                "<section>{}</section>",
                trend_chart(&id, &kernel.name, &series)
            ));
        }
    }
    format!(
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <title>FedL bench history</title><style>\
         body{{font-family:system-ui,sans-serif;max-width:720px;margin:2rem auto;color:#111}}\
         h2{{font-size:1rem;margin:1.2rem 0 0.3rem}}\
         .frame{{fill:none;stroke:#9ca3af;stroke-width:1}}\
         .tick{{font-size:10px;fill:#6b7280}}\
         .title{{font-size:11px;fill:#374151}}\
         .empty{{font-size:12px;fill:#6b7280}}\
         .warn{{color:#b45309}}\
         </style></head><body><h1>FedL bench history</h1>{body}</body></html>"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::BENCH_SCHEMA_VERSION;

    fn stats(name: &str, mean: f64, std: f64) -> KernelStats {
        KernelStats {
            name: name.to_string(),
            mean_ns: mean,
            std_ns: std,
            min_ns: mean - std,
            iters: 100,
            samples: 5,
        }
    }

    fn snapshot(kernels: Vec<KernelStats>) -> BenchSnapshot {
        BenchSnapshot {
            schema_version: BENCH_SCHEMA_VERSION,
            profile: "quick".to_string(),
            threads: 4,
            kernels,
        }
    }

    fn entry(mean: f64, std: f64) -> HistoryEntry {
        HistoryEntry {
            schema_version: HISTORY_SCHEMA_VERSION,
            fingerprint: fingerprint_of(&snapshot(vec![])),
            commit: "abc123".to_string(),
            snapshot: snapshot(vec![stats("a", mean, std)]),
        }
    }

    fn history_of(entries: Vec<HistoryEntry>) -> BenchHistory {
        let text: String = entries.iter().map(|e| e.to_json_value().to_json() + "\n").collect();
        BenchHistory::parse(&text)
    }

    #[test]
    fn entry_json_round_trips() {
        let e = HistoryEntry::capture(snapshot(vec![stats("a", 1000.0, 10.0)]));
        assert_eq!(e.schema_version, HISTORY_SCHEMA_VERSION);
        assert!(e.fingerprint.contains("quick"));
        let back = HistoryEntry::from_json_value(&e.to_json_value()).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn append_and_load_round_trip_with_lenient_parsing() {
        let dir = std::env::temp_dir().join("fedl_history_test_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_HISTORY.jsonl");
        std::fs::remove_file(&path).ok();
        // Missing file loads as empty.
        let empty = BenchHistory::load(&path).unwrap();
        assert!(empty.entries().is_empty());
        assert_eq!(empty.skipped_lines(), 0);
        BenchHistory::append(&path, &entry(1000.0, 10.0)).unwrap();
        BenchHistory::append(&path, &entry(1010.0, 10.0)).unwrap();
        // A corrupt tail (killed writer) must not poison the file.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"schema_version\":1,\"trunc").unwrap();
        drop(f);
        let loaded = BenchHistory::load(&path).unwrap();
        assert_eq!(loaded.entries().len(), 2);
        assert_eq!(loaded.skipped_lines(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rolling_baseline_is_the_windowed_median() {
        // Five entries, kernel means 1000, 1100, 1200, 1300, 9000.
        // Window 3 → median of (1200, 1300, 9000) = 1300.
        let h = history_of(vec![
            entry(1000.0, 10.0),
            entry(1100.0, 10.0),
            entry(1200.0, 10.0),
            entry(1300.0, 10.0),
            entry(9000.0, 10.0),
        ]);
        let fp = fingerprint_of(&snapshot(vec![]));
        let b = h.rolling_baseline(&fp, 3).unwrap();
        assert_eq!(b.entries, 3);
        assert_eq!(b.snapshot.kernel("a").unwrap().mean_ns, 1300.0);
        // Window larger than the history uses everything (median 1200).
        let b = h.rolling_baseline(&fp, 50).unwrap();
        assert_eq!(b.entries, 5);
        assert_eq!(b.snapshot.kernel("a").unwrap().mean_ns, 1200.0);
        // Even window: the two middle values average.
        let b = h.rolling_baseline(&fp, 4).unwrap();
        assert_eq!(b.snapshot.kernel("a").unwrap().mean_ns, 1250.0);
    }

    #[test]
    fn gate_fails_on_a_regressed_snapshot_and_passes_on_a_clean_one() {
        let h = history_of(vec![entry(1000.0, 10.0), entry(1010.0, 10.0), entry(990.0, 10.0)]);
        // Clean: within noise of the 1000 median.
        let clean = snapshot(vec![stats("a", 1005.0, 10.0)]);
        let report = gate(&h, &clean, DEFAULT_BASELINE_WINDOW, 0.25);
        assert!(report.passes(), "{}", report.render());
        assert_eq!(report.baseline_entries, 3);
        // Regressed: mean inflated 2× with tight bands — both the
        // threshold and the band-separation condition trip.
        let regressed = snapshot(vec![stats("a", 2000.0, 10.0)]);
        let report = gate(&h, &regressed, DEFAULT_BASELINE_WINDOW, 0.25);
        assert!(!report.passes());
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn gate_outlier_robustness_vs_single_pair() {
        // One noisy outlier run in the history must not poison the
        // baseline: the median shrugs it off where a previous-run
        // pairwise gate would have compared against 5000.
        let h = history_of(vec![entry(1000.0, 10.0), entry(1005.0, 10.0), entry(5000.0, 10.0)]);
        let new = snapshot(vec![stats("a", 1002.0, 10.0)]);
        let report = gate(&h, &new, DEFAULT_BASELINE_WINDOW, 0.25);
        assert!(report.passes());
        let b = h.rolling_baseline(&fingerprint_of(&new), DEFAULT_BASELINE_WINDOW).unwrap();
        assert_eq!(b.snapshot.kernel("a").unwrap().mean_ns, 1005.0);
    }

    #[test]
    fn empty_or_corrupt_history_passes_with_warning() {
        let new = snapshot(vec![stats("a", 1000.0, 10.0)]);
        // Empty.
        let report = gate(&BenchHistory::empty(), &new, 5, 0.25);
        assert!(report.passes());
        assert!(report.compare.is_none());
        assert!(report.render().contains("gate passes with warning"));
        // Fully corrupt: every line skipped.
        let corrupt = BenchHistory::parse("not json\n{\"half\":\n");
        assert_eq!(corrupt.skipped_lines(), 2);
        let report = gate(&corrupt, &new, 5, 0.25);
        assert!(report.passes());
        assert!(report.render().contains("malformed history line"));
    }

    #[test]
    fn mismatched_fingerprints_never_form_a_baseline() {
        let mut alien = entry(10.0, 1.0);
        alien.fingerprint = "otheros-arm/t96/quick/bench-v1".to_string();
        let h = history_of(vec![alien]);
        // New snapshot is 100× the alien entry — but they are not
        // comparable, so the gate passes with a warning instead.
        let new = snapshot(vec![stats("a", 1000.0, 10.0)]);
        let report = gate(&h, &new, 5, 0.25);
        assert!(report.passes());
        assert!(report.render().contains("none matches fingerprint"));
    }

    #[test]
    fn entries_of_other_envelope_versions_are_kept_but_not_gated() {
        let mut future = entry(1000.0, 10.0);
        future.schema_version = HISTORY_SCHEMA_VERSION + 1;
        let h = history_of(vec![future]);
        assert_eq!(h.entries().len(), 1, "still readable");
        let new = snapshot(vec![stats("a", 9000.0, 10.0)]);
        assert!(gate(&h, &new, 5, 0.25).passes(), "never folded into a baseline");
    }

    #[test]
    fn trend_table_reports_per_kernel_drift() {
        let h = history_of(vec![entry(1000.0, 10.0), entry(2000.0, 10.0)]);
        let table = render_trend_table(&h, DEFAULT_BASELINE_WINDOW);
        assert!(table.contains("kernel"));
        assert!(table.contains('a'));
        assert!(table.contains("abc123 → abc123"), "commit provenance: {table}");
        assert!(table.contains("1.33×"), "2000/median(1500): {table}");
        // Empty history renders an explanation, not a panic.
        assert!(render_trend_table(&BenchHistory::empty(), 5).contains("nothing to report"));
    }

    #[test]
    fn trend_html_charts_every_kernel_with_stable_ids() {
        let mk = |m: f64| HistoryEntry {
            schema_version: HISTORY_SCHEMA_VERSION,
            fingerprint: fingerprint_of(&snapshot(vec![])),
            commit: "c".to_string(),
            snapshot: snapshot(vec![
                stats("gemm/square_48", m, 20.0),
                stats("core/ucb_score_update_64", m / 2.0, 5.0),
            ]),
        };
        let h = history_of(vec![mk(1000.0), mk(1100.0), mk(1050.0)]);
        let html = render_trend_html(&h);
        assert!(html.contains("<svg id=\"trend-gemm-square-48\""));
        assert!(html.contains("<svg id=\"trend-core-ucb-score-update-64\""));
        assert!(html.contains("polygon"), "±2σ band present");
        assert!(html.contains("polyline"), "trend line present");
        // Self-contained: no scripts or external assets.
        for needle in ["<script", "<link", "src="] {
            assert!(!html.contains(needle), "external reference via {needle}");
        }
        // Two fingerprints in one file get distinct chart id prefixes.
        let mut other = mk(500.0);
        other.fingerprint = "elsewhere/t8/quick/bench-v1".to_string();
        let mixed = history_of(vec![mk(1000.0), other]);
        let html = render_trend_html(&mixed);
        assert!(html.contains("<svg id=\"trend-g0-gemm-square-48\""));
        assert!(html.contains("<svg id=\"trend-g1-gemm-square-48\""));
    }
}
