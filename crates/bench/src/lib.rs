//! Experiment harness for the FedL reproduction.
//!
//! One module per concern:
//!
//! * [`profile`] — paper-scale vs quick-scale experiment sizing;
//! * [`harness`] — running the (task × distribution × policy) matrix and
//!   collecting [`fedl_core::runner::RunOutcome`] series;
//! * [`report`] — CSV/JSON emission and the human-readable summaries
//!   (accuracy-at-time, time-to-accuracy, rounds-to-accuracy);
//! * [`experiments`] — one entry point per paper figure (2–7), the
//!   headline table, and the ablation/extension studies (regret & fit,
//!   RDCS vs independent rounding, step sizes, aggregation norm,
//!   latency oracle, fairness, bandwidth allocation, dropout,
//!   multi-seed replication);
//! * [`plot`] — terminal (ASCII) curve rendering of the figure panels;
//! * [`cli`] — the `experiments` binary's argument grammar, including
//!   the `telemetry-report` run-log analysis subcommand;
//! * [`timing`] — the measured-iterations micro-benchmark harness used
//!   by the `benches/` targets (offline replacement for criterion);
//! * [`perf`] — the `experiments bench` perf-snapshot suite
//!   (`BENCH.json`) and the `bench-compare` noise-aware regression gate
//!   (DESIGN.md row **S13**, docs/OBSERVATORY.md);
//! * [`history`] — the `experiments bench-history` longitudinal layer:
//!   `BENCH_HISTORY.jsonl` snapshot storage, the rolling-baseline
//!   (median-of-last-K) CI gate, and per-kernel trend reports with
//!   ±2σ bands (ASCII + self-contained HTML).
//!
//! The `experiments` binary is a thin CLI over [`experiments`]. All
//! console tables go through `fedl_telemetry::log_line!`, so
//! `FEDL_QUIET=1` silences them.
//!
//! System-inventory row **S9** in DESIGN.md §1.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;
pub mod experiments;
pub mod harness;
pub mod history;
pub mod perf;
pub mod plot;
pub mod profile;
pub mod report;
pub mod timing;
