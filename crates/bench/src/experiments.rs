//! One entry point per paper figure, plus the headline table and the
//! design ablations called out in DESIGN.md.

use std::fmt::Write as _;
use std::path::Path;

use fedl_core::fedl::{FedLConfig, FedLPolicy};
use fedl_core::policy::PolicyKind;
use fedl_core::runner::ExperimentRunner;
use fedl_data::synth::TaskKind;
use fedl_telemetry::log_line;

use crate::harness::{run_budget_sweep_cached, run_policy_matrix_cached, CellResult, RunCache};
use crate::profile::{accuracy_targets, Profile};
use crate::report;

/// Seed shared by all figure runs so every policy faces the same sample
/// path, as in the paper's controlled comparison.
pub const FIGURE_SEED: u64 = 20220829; // ICPP'22 opening day

fn task_name(task: TaskKind) -> &'static str {
    match task {
        TaskKind::FmnistLike => "FMNIST",
        TaskKind::CifarLike => "CIFAR-10",
    }
}

/// Figures 2/4 (FMNIST) or 3/5 (CIFAR): accuracy vs simulated time and
/// accuracy vs federated round, IID (left panel) and non-IID (right
/// panel), all four policies. One run per (dist, policy) yields both
/// axes, exactly as in the paper. Completed cells are served from
/// `cache` when one is attached.
pub fn fig_time_and_round(
    profile: Profile,
    task: TaskKind,
    out_dir: &Path,
    cache: Option<&RunCache>,
) -> Vec<CellResult> {
    let budget = profile.figure_budget();
    let mut all = Vec::new();
    let (fig_t, fig_r) = match task {
        TaskKind::FmnistLike => (2, 4),
        TaskKind::CifarLike => (3, 5),
    };
    for iid in [true, false] {
        let results = run_policy_matrix_cached(profile, task, iid, budget, FIGURE_SEED, cache);
        let dist = if iid { "IID" } else { "Non-IID" };
        let max_t = results.iter().map(|r| r.outcome.total_sim_time()).fold(0.0f64, f64::max);
        let times = [max_t * 0.25, max_t * 0.5, max_t];
        report::print_time_table(
            &format!("Fig {fig_t} — {} {dist}: accuracy vs time", task_name(task)),
            &results,
            &times,
            accuracy_targets(task),
        );
        let max_round = results
            .iter()
            .map(|r| r.outcome.accuracy_by_round().last().map_or(0, |(r, _)| *r))
            .max()
            .unwrap_or(0);
        let rounds = [max_round / 4, max_round / 2, max_round];
        report::print_round_table(
            &format!("Fig {fig_r} — {} {dist}: accuracy vs round", task_name(task)),
            &results,
            &rounds,
            accuracy_targets(task),
        );
        // Terminal rendering of the accuracy-vs-time panel.
        let curves: Vec<crate::plot::Series> = results
            .iter()
            .map(|r| crate::plot::Series {
                name: r.outcome.policy.clone(),
                points: r.outcome.epochs.iter().map(|e| (e.sim_time, e.accuracy)).collect(),
            })
            .collect();
        log_line!("{}", crate::plot::render(&curves, 72, 16));
        let stem = format!("fig{fig_t}_{}", if iid { "iid" } else { "noniid" });
        report::write_series_csv(&out_dir.join(format!("{stem}.csv")), &results)
            .expect("write csv");
        all.extend(results);
    }
    report::write_json(&out_dir.join(format!("fig{fig_t}_fig{fig_r}.json")), &all)
        .expect("write json");
    all
}

/// Figures 6 (FMNIST) or 7 (CIFAR): final global loss vs budget, IID and
/// non-IID panels. Completed cells are served from `cache` when one is
/// attached.
pub fn fig_budget(
    profile: Profile,
    task: TaskKind,
    out_dir: &Path,
    cache: Option<&RunCache>,
) -> Vec<CellResult> {
    let fig = match task {
        TaskKind::FmnistLike => 6,
        TaskKind::CifarLike => 7,
    };
    let budgets = profile.budget_grid();
    let mut all = Vec::new();
    for iid in [true, false] {
        let results = run_budget_sweep_cached(profile, task, iid, FIGURE_SEED, cache);
        let dist = if iid { "IID" } else { "Non-IID" };
        report::print_budget_table(
            &format!("Fig {fig} — {} {dist}: loss vs budget", task_name(task)),
            &results,
            &budgets,
        );
        let stem = format!("fig{fig}_{}", if iid { "iid" } else { "noniid" });
        report::write_series_csv(&out_dir.join(format!("{stem}.csv")), &results)
            .expect("write csv");
        all.extend(results);
    }
    all
}

/// The §6.2 headline table: completion-time savings and accuracy
/// advantages of FedL over the baselines, per task and distribution.
/// Runs the figure matrices and summarizes them.
pub fn headline(profile: Profile, out_dir: &Path, cache: Option<&RunCache>) {
    let mut all = Vec::new();
    for task in [TaskKind::FmnistLike, TaskKind::CifarLike] {
        for iid in [true, false] {
            all.extend(run_policy_matrix_cached(
                profile,
                task,
                iid,
                profile.figure_budget(),
                FIGURE_SEED,
                cache,
            ));
        }
    }
    headline_from(&all, out_dir);
}

/// Summarizes already-computed figure matrices into the headline table
/// (used by `all` to avoid re-running the runs figs 2–5 just produced).
pub fn headline_from(results: &[CellResult], out_dir: &Path) {
    log_line!("\n════ Headline metrics (paper §6.2 prose) ════");
    for task in [TaskKind::FmnistLike, TaskKind::CifarLike] {
        for iid in [true, false] {
            let cell: Vec<CellResult> = results
                .iter()
                .filter(|r| r.cell.task == task && r.cell.iid == iid)
                .cloned()
                .collect();
            if cell.is_empty() {
                continue;
            }
            let dist = if iid { "IID" } else { "Non-IID" };
            let targets = accuracy_targets(task);
            log_line!("\n{} {dist}:", task_name(task));
            for &target in targets {
                match report::fedl_time_saving(&cell, target) {
                    Some(s) => log_line!(
                        "  time-to-{:.0}%: FedL saves {:.0}% vs best baseline",
                        target * 100.0,
                        s * 100.0
                    ),
                    None => log_line!("  time-to-{:.0}%: target not reached", target * 100.0),
                }
            }
            // Accuracy at the common final time (min of the total times).
            let t_common =
                cell.iter().map(|r| r.outcome.total_sim_time()).fold(f64::INFINITY, f64::min);
            let mut line = format!("  accuracy@{t_common:.0}s:");
            for r in &cell {
                let _ = write!(
                    line,
                    " {}={:.3}",
                    r.outcome.policy,
                    report::accuracy_at_time(r, t_common)
                );
            }
            log_line!("{line}");
            let stem = format!(
                "headline_{}_{}",
                task_name(task).to_lowercase().replace('-', ""),
                if iid { "iid" } else { "noniid" }
            );
            report::write_series_csv(&out_dir.join(format!("{stem}.csv")), &cell)
                .expect("write csv");
        }
    }
}

/// Theory validation (Corollary 1): dynamic regret and fit growth of
/// FedL. Prints the cumulative curves and a log–log growth exponent;
/// sub-linear means exponent < 1.
pub fn regret(profile: Profile, out_dir: &Path) {
    let scenario =
        profile.scenario(TaskKind::FmnistLike, true, profile.figure_budget(), FIGURE_SEED);
    let env = scenario.build_env();
    let policy = Box::new(FedLPolicy::new(
        scenario.fedl,
        scenario.env.num_clients,
        scenario.budget,
        scenario.min_participants,
    ));
    let mut runner = ExperimentRunner::with_policy(scenario, env, policy);
    let outcome = runner.run();
    let tracker = runner.policy().regret_tracker().expect("FedL maintains a tracker");
    let regret = tracker.cumulative_regret();
    let fit = tracker.fit();
    log_line!("\n── Theory validation: dynamic regret & fit ──");
    log_line!("epochs run: {}", outcome.epochs.len());
    log_line!("{:<8}{:>14}{:>14}", "t", "Reg(t)", "Fit(t)");
    let n = regret.len();
    for i in (0..n).step_by((n / 12).max(1)) {
        log_line!("{:<8}{:>14.3}{:>14.3}", i + 1, regret[i], fit[i]);
    }
    let exponent = |series: &[f64]| -> Option<f64> {
        // Least-squares slope of log(value) on log(t) over the second
        // half of the run (transient excluded); requires positive values.
        let pts: Vec<(f64, f64)> = series
            .iter()
            .enumerate()
            .skip(series.len() / 2)
            .filter(|(_, &v)| v > 1e-9)
            .map(|(i, &v)| ((i as f64 + 1.0).ln(), v.ln()))
            .collect();
        if pts.len() < 4 {
            return None;
        }
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        (denom.abs() > 1e-12).then(|| (n * sxy - sx * sy) / denom)
    };
    if let Some(e) = exponent(regret) {
        log_line!("regret growth exponent ≈ {e:.2} (sub-linear when < 1)");
    }
    if let Some(e) = exponent(fit) {
        log_line!("fit growth exponent ≈ {e:.2} (sub-linear when < 1)");
    }
    // CSV for plotting.
    let mut csv = String::from("t,regret,fit\n");
    for i in 0..n {
        csv.push_str(&format!("{},{:.6},{:.6}\n", i + 1, regret[i], fit[i]));
    }
    std::fs::create_dir_all(out_dir).expect("create out dir");
    std::fs::write(out_dir.join("regret.csv"), csv).expect("write regret csv");
}

/// Ablation: RDCS (Alg. 2) vs independent rounding — budget overshoot
/// and cohort-size dispersion.
pub fn rounding_ablation(profile: Profile) {
    log_line!("\n── Ablation: RDCS vs independent rounding ──");
    log_line!(
        "{:<14}{:>10}{:>12}{:>14}{:>14}",
        "rounding",
        "epochs",
        "final acc",
        "overspend",
        "cohort σ"
    );
    for independent in [false, true] {
        let mut scenario =
            profile.scenario(TaskKind::FmnistLike, true, profile.figure_budget(), FIGURE_SEED);
        scenario.fedl = FedLConfig { independent_rounding: independent, ..scenario.fedl };
        let mut runner = ExperimentRunner::new(scenario, PolicyKind::FedL);
        let outcome = runner.run();
        let spent = outcome.epochs.last().map_or(0.0, |e| e.spent);
        let overspend = (spent - outcome.budget).max(0.0);
        let sizes: Vec<f64> = outcome.epochs.iter().map(|e| e.cohort_size as f64).collect();
        let mean = sizes.iter().sum::<f64>() / sizes.len().max(1) as f64;
        let var =
            sizes.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / sizes.len().max(1) as f64;
        log_line!(
            "{:<14}{:>10}{:>12.3}{:>14.2}{:>14.2}",
            if independent { "independent" } else { "RDCS" },
            outcome.epochs.len(),
            outcome.final_accuracy(),
            overspend,
            var.sqrt(),
        );
    }
}

/// Ablation: the paper's `1/|E_t|` aggregation (Available) vs the
/// FedAvg-style `1/|cohort|` rule (Cohort). DESIGN.md calls this choice
/// out as the mechanism behind FedCS's early per-round advantage.
pub fn aggregation_ablation(profile: Profile) {
    use fedl_sim::AggregationNorm;
    log_line!("\n── Ablation: aggregation normalization ──");
    log_line!(
        "{:<12}{:<12}{:>10}{:>12}{:>14}{:>14}",
        "norm",
        "policy",
        "epochs",
        "final acc",
        "final loss",
        "sim time"
    );
    for norm in [AggregationNorm::Available, AggregationNorm::Cohort] {
        for policy in [PolicyKind::FedL, PolicyKind::FedCS] {
            let mut scenario =
                profile.scenario(TaskKind::FmnistLike, true, profile.figure_budget(), FIGURE_SEED);
            scenario.env.aggregation = norm;
            let mut runner = ExperimentRunner::new(scenario, policy);
            let outcome = runner.run();
            log_line!(
                "{:<12}{:<12}{:>10}{:>12.3}{:>14.3}{:>14.1}",
                format!("{norm:?}"),
                outcome.policy,
                outcome.epochs.len(),
                outcome.final_accuracy(),
                outcome.final_loss(),
                outcome.total_sim_time(),
            );
        }
    }
}

/// Reference comparison: FedL against the 1-lookahead latency oracle —
/// an empirical view of the dynamic-regret comparator.
pub fn oracle_comparison(profile: Profile) {
    log_line!("\n── Reference: FedL vs 1-lookahead latency oracle ──");
    log_line!(
        "{:<8}{:>10}{:>14}{:>14}{:>12}",
        "policy",
        "epochs",
        "sim time (s)",
        "s/epoch",
        "final acc"
    );
    for policy in [PolicyKind::FedL, PolicyKind::Oracle] {
        let scenario =
            profile.scenario(TaskKind::FmnistLike, true, profile.figure_budget(), FIGURE_SEED);
        let mut runner = ExperimentRunner::new(scenario, policy);
        let outcome = runner.run();
        let per_epoch = outcome.total_sim_time() / outcome.epochs.len().max(1) as f64;
        log_line!(
            "{:<8}{:>10}{:>14.1}{:>14.3}{:>12.3}",
            outcome.policy,
            outcome.epochs.len(),
            outcome.total_sim_time(),
            per_epoch,
            outcome.final_accuracy(),
        );
    }
}

/// Multi-seed replication: the Fig. 2 comparison at several independent
/// sample paths, reported as mean ± std — the variance check behind the
/// single-seed figures.
pub fn replication_study(profile: Profile) {
    use crate::harness::run_replicated;
    let seeds = [FIGURE_SEED, 7, 42, 1337];
    let target = accuracy_targets(TaskKind::FmnistLike)[1];
    log_line!(
        "\n── Replication: FMNIST IID over {} seeds (target {:.0}%) ──",
        seeds.len(),
        target * 100.0
    );
    log_line!(
        "{:<8}{:>22}{:>24}{:>26}",
        "policy",
        "final acc (μ±σ)",
        "sim time (μ±σ)",
        "time→target (μ±σ)"
    );
    let summaries = run_replicated(
        profile,
        TaskKind::FmnistLike,
        true,
        profile.figure_budget(),
        &seeds,
        target,
    );
    for s in summaries {
        let tt = s
            .time_to_target
            .map_or("never".to_string(), |m| format!("{:.1} ± {:.1}", m.mean, m.std));
        log_line!(
            "{:<8}{:>14.3} ± {:.3}{:>16.1} ± {:.1}{:>26}",
            s.policy,
            s.final_accuracy.mean,
            s.final_accuracy.std,
            s.total_time.mean,
            s.total_time.std,
            tt,
        );
    }
}

/// Extension study: equal-share FDMA (the simulator default, implied by
/// the paper) vs the min-makespan joint allocation of the paper's
/// reference \[24\].
pub fn bandwidth_study(profile: Profile) {
    log_line!("\n── Extension: FDMA bandwidth allocation ──");
    log_line!(
        "{:<14}{:>10}{:>14}{:>14}{:>12}",
        "allocation",
        "epochs",
        "sim time (s)",
        "s/epoch",
        "final acc"
    );
    for optimal in [false, true] {
        let mut scenario =
            profile.scenario(TaskKind::FmnistLike, true, profile.figure_budget(), FIGURE_SEED);
        scenario.env.optimal_bandwidth = optimal;
        let mut runner = ExperimentRunner::new(scenario, PolicyKind::FedL);
        let outcome = runner.run();
        log_line!(
            "{:<14}{:>10}{:>14.1}{:>14.3}{:>12.3}",
            if optimal { "min-makespan" } else { "equal-share" },
            outcome.epochs.len(),
            outcome.total_sim_time(),
            outcome.total_sim_time() / outcome.epochs.len().max(1) as f64,
            outcome.final_accuracy(),
        );
    }
}

/// Robustness study: mid-epoch client dropout (the paper's §1
/// "battery failure, device offline" uncertainty) at increasing rates.
pub fn dropout_study(profile: Profile) {
    log_line!("\n── Robustness: mid-epoch client dropout ──");
    log_line!(
        "{:<10}{:<8}{:>10}{:>12}{:>14}{:>14}",
        "p_drop",
        "policy",
        "epochs",
        "final acc",
        "final loss",
        "sim time"
    );
    for &p in &[0.0, 0.1, 0.3] {
        for policy in [PolicyKind::FedL, PolicyKind::FedAvg] {
            let mut scenario =
                profile.scenario(TaskKind::FmnistLike, true, profile.figure_budget(), FIGURE_SEED);
            scenario.env.p_dropout = p;
            let mut runner = ExperimentRunner::new(scenario, policy);
            let outcome = runner.run();
            log_line!(
                "{:<10}{:<8}{:>10}{:>12.3}{:>14.3}{:>14.1}",
                p,
                outcome.policy,
                outcome.epochs.len(),
                outcome.final_accuracy(),
                outcome.final_loss(),
                outcome.total_sim_time(),
            );
        }
    }
}

/// Extension study: the selection-fairness weight (the paper's stated
/// future work) — Jain index of selection counts vs performance.
pub fn fairness_study(profile: Profile) {
    log_line!("\n── Extension: selection fairness ──");
    log_line!(
        "{:<10}{:>12}{:>12}{:>14}{:>14}",
        "weight",
        "Jain index",
        "final acc",
        "final loss",
        "sim time"
    );
    for &weight in &[0.0, 0.5, 2.0, 8.0] {
        let scenario =
            profile.scenario(TaskKind::FmnistLike, true, profile.figure_budget(), FIGURE_SEED);
        let env = scenario.build_env();
        let m = scenario.env.num_clients;
        let policy = Box::new(FedLPolicy::new(
            FedLConfig { fairness_weight: weight, ..scenario.fedl },
            m,
            scenario.budget,
            scenario.min_participants,
        ));
        let mut runner = ExperimentRunner::with_policy(scenario, env, policy);
        let outcome = runner.run();
        log_line!(
            "{:<10}{:>12.3}{:>12.3}{:>14.3}{:>14.1}",
            weight,
            runner.trace().jain_fairness(m),
            outcome.final_accuracy(),
            outcome.final_loss(),
            outcome.total_sim_time(),
        );
    }
}

/// Ablation: Corollary-1 step-size schedule vs fixed step sizes.
pub fn stepsize_ablation(profile: Profile) {
    log_line!("\n── Ablation: step sizes β = δ ──");
    log_line!("{:<18}{:>10}{:>12}{:>14}", "steps", "epochs", "final acc", "final loss");
    let mut variants: Vec<(String, FedLConfig)> =
        vec![("corollary-1".into(), FedLConfig::default())];
    for &s in &[0.01, 0.1, 1.0, 10.0] {
        variants.push((
            format!("fixed {s}"),
            FedLConfig { fixed_steps: Some((s, s)), ..FedLConfig::default() },
        ));
    }
    for (name, fedl) in variants {
        let mut scenario =
            profile.scenario(TaskKind::FmnistLike, true, profile.figure_budget(), FIGURE_SEED);
        scenario.fedl = fedl;
        let mut runner = ExperimentRunner::new(scenario, PolicyKind::FedL);
        let outcome = runner.run();
        log_line!(
            "{:<18}{:>10}{:>12.3}{:>14.3}",
            name,
            outcome.epochs.len(),
            outcome.final_accuracy(),
            outcome.final_loss(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_seed_is_stable() {
        // The seed is part of the reproduction contract — changing it
        // invalidates EXPERIMENTS.md.
        assert_eq!(FIGURE_SEED, 20220829);
    }

    #[test]
    fn task_names() {
        assert_eq!(task_name(TaskKind::FmnistLike), "FMNIST");
        assert_eq!(task_name(TaskKind::CifarLike), "CIFAR-10");
    }
}
