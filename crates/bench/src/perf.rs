//! Perf snapshots and cross-run regression gating — the repo's
//! benchmark trajectory (`experiments bench` / `bench-compare`,
//! DESIGN.md row **S13**, schema in docs/OBSERVATORY.md).
//!
//! [`run_suite`] times a fixed, seeded set of micro- and macro-kernels
//! — GEMM and softmax (S1), a DANE local solve (S2), RDCS dependent
//! rounding (S5/S6), the FedL online-learner score update, the columnar
//! scheduler at the 10k/100k/1M scale tiers (docs/SCALE.md), a
//! 1k-cohort selection through the framed service protocol
//! (docs/SERVE.md), a sharded 100k distributed epoch through the
//! coordinator/worker protocol (docs/DIST.md), and one
//! full quick-profile federated epoch end-to-end — on the in-tree
//! [`crate::timing`] harness, and packages the per-kernel statistics
//! into a [`BenchSnapshot`] serialisable to `BENCH.json` via
//! `fedl-json`. [`compare`] loads two snapshots and applies a
//! noise-aware slowdown test so `scripts/ci.sh` can gate on perf
//! regressions.

use std::path::Path;
use std::time::Duration;

use fedl_json::{obj, read_field, FromJson, ToJson, Value};
use fedl_telemetry::log_line;

use crate::profile::Profile;
use crate::timing::{self, measure_with_budget, Measurement};

/// Version of the `BENCH.json` schema. Bump when kernel names, fields,
/// or measurement semantics change; `bench-compare` refuses to compare
/// snapshots across versions. v2 added the `scale/` kernel family
/// (columnar scheduler passes at the 10k/100k/1M tiers, docs/SCALE.md);
/// v3 added the `serve/` family (cohort selection through the framed
/// service protocol, docs/SERVE.md); v4 added the `dist/` family (a
/// full coordinator epoch over a sharded 100k population through the
/// worker protocol, docs/DIST.md).
pub const BENCH_SCHEMA_VERSION: u32 = 4;

/// Half-width multiplier of the noise band `mean ± K·std` used by the
/// regression test.
const NOISE_BAND_STDS: f64 = 2.0;

/// Per-kernel timing statistics over the measured samples.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Kernel label, e.g. `gemm/square_96`.
    pub name: String,
    /// Mean per-iteration nanoseconds over the samples.
    pub mean_ns: f64,
    /// Population standard deviation of the per-sample times.
    pub std_ns: f64,
    /// Fastest sample (noise floor).
    pub min_ns: f64,
    /// Iterations per sample (calibrated).
    pub iters: u64,
    /// Number of timed samples.
    pub samples: usize,
}

impl KernelStats {
    fn from_measurement(name: &str, m: &Measurement) -> Self {
        Self {
            name: name.to_string(),
            mean_ns: m.mean_ns(),
            std_ns: m.std_ns(),
            min_ns: m.min_ns(),
            iters: m.iters,
            samples: m.per_iter_ns.len(),
        }
    }
}

impl ToJson for KernelStats {
    fn to_json_value(&self) -> Value {
        obj(vec![
            ("name", self.name.to_json_value()),
            ("mean_ns", self.mean_ns.to_json_value()),
            ("std_ns", self.std_ns.to_json_value()),
            ("min_ns", self.min_ns.to_json_value()),
            ("iters", (self.iters as usize).to_json_value()),
            ("samples", self.samples.to_json_value()),
        ])
    }
}

impl FromJson for KernelStats {
    fn from_json_value(v: &Value) -> Result<Self, fedl_json::Error> {
        let iters: usize = read_field(v, "iters")?;
        Ok(Self {
            name: read_field(v, "name")?,
            mean_ns: read_field(v, "mean_ns")?,
            std_ns: read_field(v, "std_ns")?,
            min_ns: read_field(v, "min_ns")?,
            iters: iters as u64,
            samples: read_field(v, "samples")?,
        })
    }
}

/// One machine-readable perf snapshot (`BENCH.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// [`BENCH_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Suite sizing (`"quick"` or `"paper"`).
    pub profile: String,
    /// Hardware parallelism of the measuring machine.
    pub threads: usize,
    /// Per-kernel statistics, in suite order.
    pub kernels: Vec<KernelStats>,
}

impl ToJson for BenchSnapshot {
    fn to_json_value(&self) -> Value {
        obj(vec![
            ("schema_version", (self.schema_version as usize).to_json_value()),
            ("profile", self.profile.to_json_value()),
            ("threads", self.threads.to_json_value()),
            ("kernels", self.kernels.to_json_value()),
        ])
    }
}

impl FromJson for BenchSnapshot {
    fn from_json_value(v: &Value) -> Result<Self, fedl_json::Error> {
        let schema_version: usize = read_field(v, "schema_version")?;
        Ok(Self {
            schema_version: schema_version as u32,
            profile: read_field(v, "profile")?,
            threads: read_field(v, "threads")?,
            kernels: read_field(v, "kernels")?,
        })
    }
}

impl BenchSnapshot {
    /// Serialises the snapshot to `path` (creating parent directories).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json_value().to_json_pretty())
    }

    /// Reads a snapshot back from `path`.
    pub fn read(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let value = Value::parse(&text)
            .map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;
        Self::from_json_value(&value)
            .map_err(|e| format!("{} is not a BENCH.json snapshot: {e}", path.display()))
    }

    /// The stats for `name`, if the suite measured it.
    pub fn kernel(&self, name: &str) -> Option<&KernelStats> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

/// Per-kernel measurement budget for the profile.
fn kernel_budget(profile: Profile) -> Duration {
    match profile {
        Profile::Paper => Duration::from_millis(400),
        Profile::Quick => Duration::from_millis(80),
    }
}

fn measure_kernel<R>(
    kernels: &mut Vec<KernelStats>,
    budget: Duration,
    name: &str,
    f: impl FnMut() -> R,
) {
    let m = measure_with_budget(budget, f);
    log_line!(
        "{name:<44} {:>12}/iter  ±{:>10}  (min {:>12})",
        timing::fmt_ns(m.mean_ns()),
        timing::fmt_ns(m.std_ns()),
        timing::fmt_ns(m.min_ns()),
    );
    kernels.push(KernelStats::from_measurement(name, &m));
}

/// GEMM + softmax kernels (linear-algebra substrate, S1).
fn suite_linalg(kernels: &mut Vec<KernelStats>, budget: Duration, profile: Profile) {
    use fedl_linalg::rng::rng_for;
    use fedl_linalg::Matrix;

    let n = match profile {
        Profile::Paper => 96,
        Profile::Quick => 48,
    };
    let mut rng = rng_for(0xBE1, n as u64);
    let a = Matrix::uniform(n, n, 1.0, &mut rng);
    let b = Matrix::uniform(n, n, 1.0, &mut rng);
    measure_kernel(kernels, budget, &format!("gemm/square_{n}"), || {
        std::hint::black_box(a.matmul(&b))
    });

    let (rows, cols) = match profile {
        Profile::Paper => (256, 96),
        Profile::Quick => (128, 64),
    };
    let logits = Matrix::uniform(rows, cols, 1.0, &mut rng);
    measure_kernel(kernels, budget, &format!("linalg/softmax_rows_{rows}x{cols}"), || {
        std::hint::black_box(fedl_linalg::ops::softmax_rows(&logits))
    });
}

/// One DANE local solve on a seeded synthetic client shard (S2).
fn suite_dane(kernels: &mut Vec<KernelStats>, budget: Duration, profile: Profile) {
    use fedl_data::synth::small_fmnist;
    use fedl_linalg::rng::rng_for;
    use fedl_ml::dane::{local_update, DaneConfig};
    use fedl_ml::model::{Mlp, Model};

    let samples = match profile {
        Profile::Paper => 400,
        Profile::Quick => 160,
    };
    let (train, _) = small_fmnist(samples, 10, 0xBE2);
    let mut rng = rng_for(0xBE3, 0);
    let model = Mlp::new(train.dim(), &[64], train.num_classes, 0.0005, &mut rng);
    let (x, y) = (train.features.clone(), train.one_hot_labels());
    let (_, j) = model.loss_and_grad(&x, &y);
    let cfg = DaneConfig::default();
    let mut rng = rng_for(0xBE4, 0);
    measure_kernel(kernels, budget, &format!("ml/dane_local_solve_{samples}"), || {
        std::hint::black_box(local_update(&model, &train, &j, &cfg, &mut rng))
    });
}

/// RDCS dependent rounding over a seeded fractional vector (S5/S6).
fn suite_rounding(kernels: &mut Vec<KernelStats>, budget: Duration, profile: Profile) {
    use fedl_core::rounding;
    use fedl_linalg::rng::rng_for;
    use fedl_linalg::rng::Rng;

    let k = match profile {
        Profile::Paper => 1024,
        Profile::Quick => 256,
    };
    let mut seed_rng = rng_for(0xBE5, k as u64);
    let x0: Vec<f64> = (0..k).map(|_| seed_rng.next_f64()).collect();
    let mut rng = rng_for(0xBE6, k as u64);
    measure_kernel(kernels, budget, &format!("core/rdcs_round_{k}"), || {
        let mut x = x0.clone();
        std::hint::black_box(rounding::rdcs(&mut x, &mut rng))
    });
}

/// The FedL online-learner score update: assemble the one-shot problem
/// from the per-client estimates, take the descent step, and fold a
/// realized epoch back into the EMA memory and dual multipliers.
fn suite_score_update(kernels: &mut Vec<KernelStats>, budget: Duration, profile: Profile) {
    use fedl_core::online::{OnlineLearner, StepSizes};
    use fedl_core::policy::EpochContext;
    use fedl_sim::EpochReport;

    let m = match profile {
        Profile::Paper => 128,
        Profile::Quick => 64,
    };
    let n = m / 8;
    let ctx = EpochContext {
        epoch: 0,
        num_clients: m,
        available: (0..m).collect(),
        costs: (0..m).map(|i| 0.5 + (i % 11) as f64).collect(),
        data_volumes: vec![20; m],
        latency_hint: (0..m).map(|i| 0.1 + 0.01 * (i % 7) as f64).collect(),
        loss_hint: vec![2.0; m],
        true_latency: (0..m).map(|i| 0.1 + 0.01 * (i % 7) as f64).collect(),
        remaining_budget: 10_000.0,
        min_participants: n,
        seed: 0xBE7,
    };
    let cohort: Vec<usize> = (0..n).collect();
    let report = EpochReport {
        epoch: 0,
        cohort: cohort.clone(),
        iterations: 2,
        latency_secs: 0.4,
        per_client_iter_latency: vec![0.2; n],
        cost: n as f64,
        eta_hats: vec![0.4f32; n],
        global_loss_all: 1.4,
        global_loss_selected: 1.3,
        grad_dot_delta: vec![-0.2f32; n],
        local_losses: vec![1.4f32; n],
        failed: vec![],
    };
    let mut learner = OnlineLearner::new(m, StepSizes::fixed(0.3, 0.3), 1.0, 10.0, 0.1);
    measure_kernel(kernels, budget, &format!("core/ucb_score_update_{m}"), || {
        let problem = learner.build_problem(&ctx);
        let frac = learner.decide(&ctx, &problem);
        learner.observe(&ctx, &report, &frac, &problem);
        std::hint::black_box(frac.rho)
    });
}

/// The columnar scheduler at scale-tier populations (docs/SCALE.md):
/// one full FedL score update — dense problem assembly from the
/// population/epoch columns plus the realized-epoch fold-back,
/// everything except the PGD descent, whose iteration count does not
/// grow with the population — and RDCS rounding over a tier-sized
/// fractional vector. The quick profile measures the 10k tier; paper
/// adds 100k and 1M.
fn suite_scale(kernels: &mut Vec<KernelStats>, budget: Duration, profile: Profile) {
    use fedl_core::columnar::scale_context;
    use fedl_core::objective::FracDecision;
    use fedl_core::online::{OnlineLearner, StepSizes};
    use fedl_core::rounding;
    use fedl_linalg::rng::{rng_for, Rng};
    use fedl_net::{ChannelModel, LatencyModel};
    use fedl_sim::{
        ClientColumns, EnvConfig, EpochColumns, EpochRealizeScratch, EpochReport, ScaleTier,
    };

    let tiers: &[ScaleTier] = match profile {
        Profile::Paper => &ScaleTier::ALL,
        Profile::Quick => &[ScaleTier::Tier10k],
    };
    for &tier in tiers {
        let m = tier.num_clients();
        let config = EnvConfig::scale(tier, 0xBE9);
        let channel = ChannelModel::default();
        let cols = ClientColumns::build(&config, &channel);
        let e0 = cols.epoch_columns(0, &config, &channel);
        let latency = LatencyModel::paper_defaults(config.upload_bits, 64.0);
        let n = (m / 8).max(1);
        // Epoch 0 hints from its own realization, like the runner.
        let ctx = scale_context(&cols, &e0, &e0, &latency, 1e9, n, config.seed)
            .expect("scale tiers leave someone available");
        let avail = ctx.available.len();
        let cohort: Vec<usize> = ctx.available.iter().copied().take(64).collect();
        let nc = cohort.len();
        let report = EpochReport {
            epoch: 0,
            cohort,
            iterations: 2,
            latency_secs: 0.4,
            per_client_iter_latency: vec![0.2; nc],
            cost: nc as f64,
            eta_hats: vec![0.4f32; nc],
            global_loss_all: 1.4,
            global_loss_selected: 1.3,
            grad_dot_delta: vec![-0.2f32; nc],
            local_losses: vec![1.4f32; nc],
            failed: vec![],
        };
        let frac = FracDecision { x: vec![0.1; avail], rho: 2.0 };
        let mut learner = OnlineLearner::new(m, StepSizes::fixed(0.3, 0.3), 1.0, 10.0, 0.1);
        let label = tier.label();
        measure_kernel(kernels, budget, &format!("scale/score_update_{label}"), || {
            let problem = learner.build_problem(&ctx);
            learner.observe(&ctx, &report, &frac, &problem);
            std::hint::black_box(learner.multipliers().0)
        });

        let mut seed_rng = rng_for(0xBEA, m as u64);
        let x0: Vec<f64> = (0..m).map(|_| seed_rng.next_f64()).collect();
        let mut rng = rng_for(0xBEB, m as u64);
        measure_kernel(kernels, budget, &format!("scale/rounding_{label}"), || {
            let mut x = x0.clone();
            std::hint::black_box(rounding::rdcs(&mut x, &mut rng))
        });

        // The allocation-free time-axis realization (the serve/dist
        // per-epoch front door); the warm scratch keeps steady-state
        // iterations heap-free, so this measures draws, not malloc.
        let mut scratch = EpochRealizeScratch::new();
        let mut realized = EpochColumns::default();
        let mut epoch = 0usize;
        measure_kernel(kernels, budget, &format!("scale/epoch_realize_{label}"), || {
            epoch += 1;
            cols.epoch_columns_into(epoch, &config, &channel, &mut scratch, &mut realized);
            std::hint::black_box(realized.cost[m - 1])
        });
    }
}

/// One full quick-profile federated epoch end-to-end: selection, local
/// DANE solves, aggregation, payment, and evaluation — the unit of work
/// every figure multiplies by hundreds. Always measured at quick scale
/// so the macro-kernel stays comparable across profiles.
fn suite_epoch(kernels: &mut Vec<KernelStats>, budget: Duration) {
    use fedl_core::policy::PolicyKind;
    use fedl_core::runner::{ExperimentRunner, ScenarioConfig};

    let mut s = ScenarioConfig::small_fmnist(20, 1.0e12, 4).with_seed(0xBE8);
    s.train_size = 1000;
    s.test_size = 200;
    s.max_epochs = usize::MAX / 2;
    let mut runner = ExperimentRunner::new(s, PolicyKind::FedL);
    measure_kernel(kernels, budget, "epoch/full_quick_epoch", || {
        std::hint::black_box(runner.step())
    });
}

/// The service path (S15): a 1k-client cohort selection driven through
/// the full framed protocol — encode request, envelope-verify + decode
/// on the server, sharded scoring + RDCS rounding, encode the cohort
/// reply, then the synthesized `TrainResult` closing the epoch. What
/// `experiments loadgen` measures end-to-end over TCP, minus sockets.
fn suite_serve(kernels: &mut Vec<KernelStats>, budget: Duration) {
    use fedl_core::policy::PolicyKind;
    use fedl_net::ChannelModel;
    use fedl_serve::{decode_frame, encode_frame, Message, ServeConfig, ServerState};
    use fedl_sim::ClientColumns;
    use fedl_telemetry::Telemetry;

    let config = ServeConfig::new(1000, 0xE55, 1.0e15, 8, PolicyKind::FedL);
    let mut server = ServerState::new(config.clone(), Telemetry::disabled());
    for client in 0..config.env.num_clients {
        server.handle_message(Message::ClientJoin { client });
    }
    let channel = ChannelModel::default();
    let latency = config.latency_model();
    let cols = ClientColumns::build(&config.env, &channel);
    measure_kernel(kernels, budget, "serve/select_1k", || {
        let epoch = server.next_epoch();
        let (reply, _) = server.handle_frame(&encode_frame(&Message::SelectCohort {
            epoch,
            trace: fedl_serve::Trace::Absent,
        }));
        let Ok(Message::Cohort { cohort, iterations, .. }) = decode_frame(&reply) else {
            panic!("serve/select_1k: server refused the selection request");
        };
        if !cohort.is_empty() {
            let synth = fedl_serve::synth_train_result(
                &cols, &config, &channel, &latency, epoch, &cohort, iterations,
            );
            let (ack, _) =
                server.handle_frame(&encode_frame(&synth.to_message(epoch, &cohort, iterations)));
            std::hint::black_box(ack);
        }
    });
}

/// The distributed execution layer (S16): one full coordinator epoch
/// over a 100k-client population sharded across two in-process workers
/// — per-shard partial context realization, framed encode →
/// envelope-verify → decode on every exchange, the fixed-shard-order
/// merge, selection, and the training-feedback fold. What
/// `experiments dist` measures end-to-end over TCP, minus sockets
/// (docs/DIST.md). Driven under the FedAvg policy so the measured work
/// is the distributed layer itself; the FedL solver's population
/// scaling has its own `scale/` kernels.
fn suite_dist(kernels: &mut Vec<KernelStats>, budget: Duration) {
    use fedl_core::policy::PolicyKind;
    use fedl_dist::{
        shard_ranges, Coordinator, DistOptions, LocalWorkerLink, ShardWorker, WorkerState,
    };
    use fedl_serve::ServeConfig;
    use fedl_telemetry::Telemetry;

    let config = ServeConfig::new(100_000, 0xD157, 1.0e15, 64, PolicyKind::FedAvg);
    let workers: Vec<ShardWorker> = shard_ranges(config.env.num_clients, 2)
        .into_iter()
        .map(|shard| ShardWorker {
            shard,
            link: Box::new(LocalWorkerLink::new(WorkerState::new(Telemetry::disabled()))),
        })
        .collect();
    let mut coordinator = Coordinator::new(config, workers, Telemetry::disabled())
        .expect("two contiguous shards cover the population");
    // Each iteration re-drives epoch 0: the handshake is an (answered
    // in-place) reassignment of the shard the workers already hold, so
    // the measured work is the epoch itself.
    let opts = DistOptions { epochs: 1, ..Default::default() };
    measure_kernel(kernels, budget, "dist/epoch_100k", || {
        let report = coordinator.run(&opts).expect("an in-process dist epoch cannot fail");
        std::hint::black_box(report.selections.len())
    });
}

/// Runs the whole seeded suite and packages the snapshot.
pub fn run_suite(profile: Profile) -> BenchSnapshot {
    let budget = kernel_budget(profile);
    let profile_name = match profile {
        Profile::Paper => "paper",
        Profile::Quick => "quick",
    };
    log_line!("── perf snapshot suite ({profile_name}) ──");
    let mut kernels = Vec::new();
    suite_linalg(&mut kernels, budget, profile);
    suite_dane(&mut kernels, budget, profile);
    suite_rounding(&mut kernels, budget, profile);
    suite_score_update(&mut kernels, budget, profile);
    suite_scale(&mut kernels, budget, profile);
    suite_serve(&mut kernels, budget);
    suite_dist(&mut kernels, budget);
    suite_epoch(&mut kernels, budget);
    BenchSnapshot {
        schema_version: BENCH_SCHEMA_VERSION,
        profile: profile_name.to_string(),
        threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        kernels,
    }
}

/// Verdict for one kernel of a [`compare`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within noise of the baseline (or a tolerable slowdown).
    Ok,
    /// Slower than the baseline beyond both the threshold and the noise
    /// bands — fails the gate.
    Regressed,
    /// Faster than the baseline beyond the threshold and the noise
    /// bands.
    Improved,
    /// Present only in the baseline snapshot.
    OnlyBase,
    /// Present only in the new snapshot.
    OnlyNew,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Regressed => "REGRESSED",
            Verdict::Improved => "improved",
            Verdict::OnlyBase => "only-base",
            Verdict::OnlyNew => "only-new",
        }
    }
}

/// One row of the comparison table.
#[derive(Debug, Clone)]
pub struct CompareRow {
    /// Kernel label.
    pub name: String,
    /// Baseline stats, absent for [`Verdict::OnlyNew`].
    pub base: Option<KernelStats>,
    /// New stats, absent for [`Verdict::OnlyBase`].
    pub new: Option<KernelStats>,
    /// `new.mean / base.mean` when both sides exist.
    pub ratio: Option<f64>,
    /// The noise-aware verdict.
    pub verdict: Verdict,
}

/// The result of comparing two snapshots.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-kernel rows, baseline suite order first, then new-only rows.
    pub rows: Vec<CompareRow>,
    /// Relative slowdown threshold used (e.g. `0.25` for 25 %).
    pub threshold: f64,
}

impl CompareReport {
    /// `true` when any kernel regressed (the CI gate condition).
    pub fn has_regression(&self) -> bool {
        self.rows.iter().any(|r| r.verdict == Verdict::Regressed)
    }

    /// The fixed-width per-kernel table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<34} {:>22} {:>22} {:>7}  {}\n",
            "kernel", "base mean±std", "new mean±std", "ratio", "verdict"
        ));
        for row in &self.rows {
            let fmt_side = |s: &Option<KernelStats>| match s {
                Some(k) => format!("{}±{}", timing::fmt_ns(k.mean_ns), timing::fmt_ns(k.std_ns)),
                None => "—".to_string(),
            };
            let ratio = row.ratio.map_or("—".to_string(), |r| format!("{r:.2}×"));
            out.push_str(&format!(
                "{:<34} {:>22} {:>22} {:>7}  {}\n",
                row.name,
                fmt_side(&row.base),
                fmt_side(&row.new),
                ratio,
                row.verdict.label()
            ));
        }
        out
    }
}

/// Noise-aware comparison of two snapshots: a kernel regresses only
/// when its mean slowed down by more than `threshold` (relative) *and*
/// the `mean ± 2·std` noise bands of the two measurements do not
/// overlap — so a noisy kernel whose bands still touch never fails the
/// gate spuriously. Kernels present on only one side are reported but
/// never gate. Snapshots of different schema versions refuse to
/// compare.
pub fn compare(
    base: &BenchSnapshot,
    new: &BenchSnapshot,
    threshold: f64,
) -> Result<CompareReport, String> {
    if base.schema_version != new.schema_version {
        return Err(format!(
            "snapshot schema versions differ: base v{}, new v{}",
            base.schema_version, new.schema_version
        ));
    }
    let mut rows = Vec::new();
    for b in &base.kernels {
        let row = match new.kernel(&b.name) {
            None => CompareRow {
                name: b.name.clone(),
                base: Some(b.clone()),
                new: None,
                ratio: None,
                verdict: Verdict::OnlyBase,
            },
            Some(n) => {
                let ratio = n.mean_ns / b.mean_ns.max(f64::MIN_POSITIVE);
                let base_hi = b.mean_ns + NOISE_BAND_STDS * b.std_ns;
                let new_lo = n.mean_ns - NOISE_BAND_STDS * n.std_ns;
                let bands_separate = new_lo > base_hi;
                let verdict = if ratio > 1.0 + threshold && bands_separate {
                    Verdict::Regressed
                } else if ratio < 1.0 / (1.0 + threshold)
                    && b.mean_ns - NOISE_BAND_STDS * b.std_ns
                        > n.mean_ns + NOISE_BAND_STDS * n.std_ns
                {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                CompareRow {
                    name: b.name.clone(),
                    base: Some(b.clone()),
                    new: Some(n.clone()),
                    ratio: Some(ratio),
                    verdict,
                }
            }
        };
        rows.push(row);
    }
    for n in &new.kernels {
        if base.kernel(&n.name).is_none() {
            rows.push(CompareRow {
                name: n.name.clone(),
                base: None,
                new: Some(n.clone()),
                ratio: None,
                verdict: Verdict::OnlyNew,
            });
        }
    }
    Ok(CompareReport { rows, threshold })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(name: &str, mean: f64, std: f64) -> KernelStats {
        KernelStats {
            name: name.to_string(),
            mean_ns: mean,
            std_ns: std,
            min_ns: mean - std,
            iters: 100,
            samples: 5,
        }
    }

    fn snapshot(kernels: Vec<KernelStats>) -> BenchSnapshot {
        BenchSnapshot {
            schema_version: BENCH_SCHEMA_VERSION,
            profile: "quick".to_string(),
            threads: 4,
            kernels,
        }
    }

    #[test]
    fn snapshot_json_round_trips() {
        let snap = snapshot(vec![stats("gemm/square_48", 1500.0, 30.0)]);
        let back = BenchSnapshot::from_json_value(&snap.to_json_value()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn identical_snapshots_pass() {
        let snap = snapshot(vec![stats("a", 1000.0, 20.0), stats("b", 5000.0, 100.0)]);
        let report = compare(&snap, &snap.clone(), 0.25).unwrap();
        assert!(!report.has_regression());
        assert!(report.rows.iter().all(|r| r.verdict == Verdict::Ok));
    }

    #[test]
    fn two_x_slowdown_regresses() {
        let base = snapshot(vec![stats("a", 1000.0, 20.0)]);
        let slowed = snapshot(vec![stats("a", 2000.0, 20.0)]);
        let report = compare(&base, &slowed, 0.25).unwrap();
        assert!(report.has_regression());
        assert_eq!(report.rows[0].verdict, Verdict::Regressed);
        assert!((report.rows[0].ratio.unwrap() - 2.0).abs() < 1e-12);
        // The same 2x in the other direction is an improvement.
        let report = compare(&slowed, &base, 0.25).unwrap();
        assert!(!report.has_regression());
        assert_eq!(report.rows[0].verdict, Verdict::Improved);
    }

    #[test]
    fn noisy_slowdown_within_bands_does_not_regress() {
        // 40% slower but with std so large the 2-sigma bands overlap:
        // noise, not a regression.
        let base = snapshot(vec![stats("a", 1000.0, 300.0)]);
        let noisy = snapshot(vec![stats("a", 1400.0, 300.0)]);
        let report = compare(&base, &noisy, 0.25).unwrap();
        assert!(!report.has_regression());
        assert_eq!(report.rows[0].verdict, Verdict::Ok);
    }

    #[test]
    fn asymmetric_kernels_are_reported_not_gated() {
        let base = snapshot(vec![stats("a", 1000.0, 10.0), stats("gone", 1.0, 0.1)]);
        let new = snapshot(vec![stats("a", 1000.0, 10.0), stats("fresh", 1.0, 0.1)]);
        let report = compare(&base, &new, 0.25).unwrap();
        assert!(!report.has_regression());
        let verdicts: Vec<(String, Verdict)> =
            report.rows.iter().map(|r| (r.name.clone(), r.verdict)).collect();
        assert!(verdicts.contains(&("gone".to_string(), Verdict::OnlyBase)));
        assert!(verdicts.contains(&("fresh".to_string(), Verdict::OnlyNew)));
        let table = report.render();
        assert!(table.contains("only-base") && table.contains("only-new"));
    }

    #[test]
    fn schema_version_mismatch_refuses() {
        let base = snapshot(vec![]);
        let mut new = snapshot(vec![]);
        new.schema_version = BENCH_SCHEMA_VERSION + 1;
        assert!(compare(&base, &new, 0.25).unwrap_err().contains("schema versions"));
    }

    #[test]
    fn quick_suite_covers_every_kernel_family() {
        // FEDL_BENCH_FAST-equivalent: the quick suite itself is the
        // smallest configuration; just run it once end-to-end.
        let snap = run_suite(Profile::Quick);
        assert_eq!(snap.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(snap.profile, "quick");
        assert!(snap.threads >= 1);
        for prefix in [
            "gemm/",
            "linalg/softmax",
            "ml/dane",
            "core/rdcs",
            "core/ucb",
            "scale/",
            "serve/",
            "dist/",
            "epoch/",
        ] {
            assert!(
                snap.kernels.iter().any(|k| k.name.starts_with(prefix)),
                "suite is missing a {prefix} kernel: {:?}",
                snap.kernels.iter().map(|k| &k.name).collect::<Vec<_>>()
            );
        }
        for k in &snap.kernels {
            assert!(k.mean_ns > 0.0 && k.min_ns > 0.0, "{} timed nothing", k.name);
            assert!(k.samples >= 3, "{} has too few samples", k.name);
        }
        // And the snapshot must survive a disk round-trip.
        let dir = std::env::temp_dir().join("fedl_perf_suite_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH.json");
        snap.write(&path).unwrap();
        let back = BenchSnapshot::read(&path).unwrap();
        assert_eq!(snap, back);
        std::fs::remove_dir_all(&dir).ok();
    }
}
