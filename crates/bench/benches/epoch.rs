//! End-to-end benchmark: one full simulated federated epoch per policy
//! (selection + local DANE solves + aggregation + accounting) — the unit
//! of work every figure multiplies by hundreds.

use fedl_bench::timing::{bench, group};
use fedl_core::policy::PolicyKind;
use fedl_core::runner::{ExperimentRunner, ScenarioConfig};

fn scenario() -> ScenarioConfig {
    let mut s = ScenarioConfig::small_fmnist(20, 1.0e9, 4).with_seed(5);
    s.train_size = 1000;
    s.test_size = 100;
    s.max_epochs = 3;
    s
}

fn bench_epochs() {
    group("federated_epochs");
    for kind in PolicyKind::ALL {
        bench(&format!("three_epochs/{}", kind.label()), || {
            let mut runner = ExperimentRunner::new(scenario(), kind);
            std::hint::black_box(runner.run())
        });
    }
}

fn bench_local_solve() {
    use fedl_data::synth::small_fmnist;
    use fedl_linalg::rng::rng_for;
    use fedl_ml::dane::{local_update, DaneConfig};
    use fedl_ml::model::{Mlp, Model};

    let (train, _) = small_fmnist(400, 10, 9);
    let mut rng = rng_for(6, 0);
    let model = Mlp::new(train.dim(), &[64], train.num_classes, 0.0005, &mut rng);
    let (x, y) = (train.features.clone(), train.one_hot_labels());
    let (_, j) = model.loss_and_grad(&x, &y);
    let cfg = DaneConfig::default();

    group("local_solve");
    let mut rng = rng_for(7, 0);
    bench("dane_local_update_400samples", || {
        std::hint::black_box(local_update(&model, &train, &j, &cfg, &mut rng))
    });
}

fn bench_cnn_forward_backward() {
    use fedl_linalg::rng::rng_for;
    use fedl_linalg::Matrix;
    use fedl_ml::model::{Cnn, ConvBlockSpec, MapShape, Model};

    let shape = MapShape { c: 1, h: 16, w: 16 };
    let mut rng = rng_for(8, 0);
    let cnn =
        Cnn::new(shape, vec![ConvBlockSpec { out_channels: 6, kernel: 5 }], 10, 0.0005, &mut rng);
    let x = Matrix::uniform(32, shape.len(), 0.5, &mut rng);
    let mut y = Matrix::zeros(32, 10);
    for r in 0..32 {
        y.set(r, r % 10, 1.0);
    }
    group("cnn");
    bench("cnn_loss_and_grad_batch32", || std::hint::black_box(cnn.loss_and_grad(&x, &y)));
}

fn main() {
    bench_epochs();
    bench_local_solve();
    bench_cnn_forward_backward();
}
