//! End-to-end benchmark: one full simulated federated epoch per policy
//! (selection + local DANE solves + aggregation + accounting) — the unit
//! of work every figure multiplies by hundreds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fedl_core::policy::PolicyKind;
use fedl_core::runner::{ExperimentRunner, ScenarioConfig};

fn scenario() -> ScenarioConfig {
    let mut s = ScenarioConfig::small_fmnist(20, 1.0e9, 4).with_seed(5);
    s.train_size = 1000;
    s.test_size = 100;
    s.max_epochs = 3;
    s
}

fn bench_epochs(c: &mut Criterion) {
    let mut group = c.benchmark_group("federated_epochs");
    group.sample_size(10);
    for kind in PolicyKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("three_epochs", kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut runner = ExperimentRunner::new(scenario(), kind);
                    std::hint::black_box(runner.run())
                });
            },
        );
    }
    group.finish();
}

fn bench_local_solve(c: &mut Criterion) {
    use fedl_data::synth::small_fmnist;
    use fedl_linalg::rng::rng_for;
    use fedl_ml::dane::{local_update, DaneConfig};
    use fedl_ml::model::{Mlp, Model};

    let (train, _) = small_fmnist(400, 10, 9);
    let mut rng = rng_for(6, 0);
    let model = Mlp::new(train.dim(), &[64], train.num_classes, 0.0005, &mut rng);
    let (x, y) = (train.features.clone(), train.one_hot_labels());
    let (_, j) = model.loss_and_grad(&x, &y);
    let cfg = DaneConfig::default();

    c.bench_function("dane_local_update_400samples", |b| {
        let mut rng = rng_for(7, 0);
        b.iter(|| std::hint::black_box(local_update(&model, &train, &j, &cfg, &mut rng)));
    });
}

fn bench_cnn_forward_backward(c: &mut Criterion) {
    use fedl_linalg::rng::rng_for;
    use fedl_linalg::Matrix;
    use fedl_ml::model::{Cnn, ConvBlockSpec, MapShape, Model};

    let shape = MapShape { c: 1, h: 16, w: 16 };
    let mut rng = rng_for(8, 0);
    let cnn = Cnn::new(
        shape,
        vec![ConvBlockSpec { out_channels: 6, kernel: 5 }],
        10,
        0.0005,
        &mut rng,
    );
    let x = Matrix::uniform(32, shape.len(), 0.5, &mut rng);
    let mut y = Matrix::zeros(32, 10);
    for r in 0..32 {
        y.set(r, r % 10, 1.0);
    }
    c.bench_function("cnn_loss_and_grad_batch32", |b| {
        b.iter(|| std::hint::black_box(cnn.loss_and_grad(&x, &y)));
    });
}

criterion_group!(benches, bench_epochs, bench_local_solve, bench_cnn_forward_backward);
criterion_main!(benches);
