//! Microbenchmarks of the online rounding algorithms (RDCS vs
//! independent) across cohort sizes.

use fedl_bench::timing::{bench, group};
use fedl_core::rounding;
use fedl_linalg::rng::{rng_for, Rng};

fn bench_rounding() {
    group("rounding");
    for &k in &[10usize, 100, 1000] {
        let mut seed_rng = rng_for(11, k as u64);
        let x0: Vec<f64> = (0..k).map(|_| seed_rng.next_f64()).collect();
        let mut rng = rng_for(12, k as u64);
        bench(&format!("rdcs/{k}"), || {
            let mut x = x0.clone();
            std::hint::black_box(rounding::rdcs(&mut x, &mut rng))
        });
        let mut rng = rng_for(13, k as u64);
        bench(&format!("independent/{k}"), || {
            let mut x = x0.clone();
            std::hint::black_box(rounding::independent(&mut x, &mut rng))
        });
    }
}

fn bench_repair() {
    group("repair");
    for &k in &[10usize, 100, 1000] {
        let mut rng = rng_for(14, k as u64);
        let costs: Vec<f64> = (0..k).map(|_| rng.gen_range(0.1..12.0)).collect();
        let selected: Vec<usize> = (0..k).filter(|_| rng.gen_bool(0.5)).collect();
        bench(&format!("repair/{k}"), || {
            let mut sel = selected.clone();
            rounding::repair(&mut sel, &costs, k / 10 + 1, k as f64);
            std::hint::black_box(sel)
        });
    }
}

fn main() {
    bench_rounding();
    bench_repair();
}
