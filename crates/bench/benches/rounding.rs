//! Microbenchmarks of the online rounding algorithms (RDCS vs
//! independent) across cohort sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fedl_core::rounding;
use fedl_linalg::rng::rng_for;
use rand::Rng;

fn bench_rounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("rounding");
    for &k in &[10usize, 100, 1000] {
        let mut seed_rng = rng_for(11, k as u64);
        let x0: Vec<f64> = (0..k).map(|_| seed_rng.gen::<f64>()).collect();
        group.bench_with_input(BenchmarkId::new("rdcs", k), &k, |b, _| {
            let mut rng = rng_for(12, k as u64);
            b.iter(|| {
                let mut x = x0.clone();
                std::hint::black_box(rounding::rdcs(&mut x, &mut rng))
            });
        });
        group.bench_with_input(BenchmarkId::new("independent", k), &k, |b, _| {
            let mut rng = rng_for(13, k as u64);
            b.iter(|| {
                let mut x = x0.clone();
                std::hint::black_box(rounding::independent(&mut x, &mut rng))
            });
        });
    }
    group.finish();
}

fn bench_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair");
    for &k in &[10usize, 100, 1000] {
        let mut rng = rng_for(14, k as u64);
        let costs: Vec<f64> = (0..k).map(|_| rng.gen_range(0.1..12.0)).collect();
        let selected: Vec<usize> = (0..k).filter(|_| rng.gen::<bool>()).collect();
        group.bench_with_input(BenchmarkId::new("repair", k), &k, |b, _| {
            b.iter(|| {
                let mut sel = selected.clone();
                rounding::repair(&mut sel, &costs, k / 10 + 1, k as f64);
                std::hint::black_box(sel)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rounding, bench_repair);
criterion_main!(benches);
