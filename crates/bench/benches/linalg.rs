//! Microbenchmarks of the linear-algebra substrate: GEMM in the shapes
//! the training loop actually uses (batch × weights and the fused
//! transpose kernels of backprop).

use fedl_bench::timing::{bench, bench_throughput, group};
use fedl_linalg::rng::rng_for;
use fedl_linalg::Matrix;

fn bench_gemm() {
    group("gemm");
    for &n in &[32usize, 128, 256] {
        let mut rng = rng_for(1, n as u64);
        let a = Matrix::uniform(n, n, 1.0, &mut rng);
        let b = Matrix::uniform(n, n, 1.0, &mut rng);
        bench_throughput(&format!("square/{n}"), (n * n * n) as u64, || {
            std::hint::black_box(a.matmul(&b))
        });
    }
}

fn bench_training_shapes() {
    // batch 32 x dim 128 against dim 128 x hidden 96: one forward layer.
    let mut rng = rng_for(2, 0);
    let x = Matrix::uniform(32, 128, 1.0, &mut rng);
    let w = Matrix::uniform(128, 96, 0.1, &mut rng);
    let delta = Matrix::uniform(32, 96, 0.1, &mut rng);

    group("training_shapes");
    bench("forward_32x128x96", || std::hint::black_box(x.matmul(&w)));
    bench("backprop_t_matmul", || std::hint::black_box(x.t_matmul(&delta)));
    // delta (32x96) x Wᵀ (96x128): the upstream-gradient product.
    bench("backprop_matmul_t", || std::hint::black_box(delta.matmul_t(&w)));
    bench("softmax_rows", || std::hint::black_box(fedl_linalg::ops::softmax_rows(&delta)));
}

fn main() {
    bench_gemm();
    bench_training_shapes();
}
