//! Microbenchmarks of the linear-algebra substrate: GEMM in the shapes
//! the training loop actually uses (batch × weights and the fused
//! transpose kernels of backprop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use fedl_linalg::rng::rng_for;
use fedl_linalg::Matrix;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[32usize, 128, 256] {
        let mut rng = rng_for(1, n as u64);
        let a = Matrix::uniform(n, n, 1.0, &mut rng);
        let b = Matrix::uniform(n, n, 1.0, &mut rng);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("square", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_training_shapes(c: &mut Criterion) {
    // batch 32 x dim 128 against dim 128 x hidden 96: one forward layer.
    let mut rng = rng_for(2, 0);
    let x = Matrix::uniform(32, 128, 1.0, &mut rng);
    let w = Matrix::uniform(128, 96, 0.1, &mut rng);
    let delta = Matrix::uniform(32, 96, 0.1, &mut rng);

    let mut group = c.benchmark_group("training_shapes");
    group.bench_function("forward_32x128x96", |b| {
        b.iter(|| std::hint::black_box(x.matmul(&w)));
    });
    group.bench_function("backprop_t_matmul", |b| {
        b.iter(|| std::hint::black_box(x.t_matmul(&delta)));
    });
    group.bench_function("backprop_matmul_t", |b| {
        // delta (32x96) x Wᵀ (96x128): the upstream-gradient product.
        b.iter(|| std::hint::black_box(delta.matmul_t(&w)));
    });
    group.bench_function("softmax_rows", |b| {
        b.iter(|| std::hint::black_box(fedl_linalg::ops::softmax_rows(&delta)));
    });
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_training_shapes);
criterion_main!(benches);
