//! Microbenchmarks of the projection toolkit and the one-shot descent
//! step at realistic problem sizes (K ≈ number of available clients).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fedl_core::objective::{FracDecision, OneShot};
use fedl_linalg::rng::rng_for;
use fedl_solver::{BoxHalfspace, BoxSet, DykstraIntersection, Halfspace, Project};
use rand::Rng;

fn problem(k: usize, seed: u64) -> OneShot {
    let mut rng = rng_for(seed, k as u64);
    OneShot {
        ids: (0..k).collect(),
        tau: (0..k).map(|_| rng.gen_range(0.01..2.0)).collect(),
        costs: (0..k).map(|_| rng.gen_range(0.1..12.0)).collect(),
        eta: (0..k).map(|_| rng.gen_range(0.1..0.9)).collect(),
        g: (0..k).map(|_| rng.gen_range(-1.0..0.1)).collect(),
        bonus: vec![0.0; k],
        loss_all: 1.8,
        theta: 1.0,
        min_participants: (k / 8).max(2),
        budget: 500.0,
        rho_max: 10.0,
    }
}

fn bench_projections(c: &mut Criterion) {
    let mut group = c.benchmark_group("projection");
    for &k in &[16usize, 64, 128] {
        let exact = BoxHalfspace::new(
            BoxSet::unit(k),
            Halfspace::new(vec![1.0; k], k as f64 / 3.0),
        );
        let dyk = DykstraIntersection::new(vec![
            Box::new(BoxSet::unit(k)),
            Box::new(Halfspace::new(vec![1.0; k], k as f64 / 3.0)),
            Box::new(Halfspace::at_least(vec![1.0; k], 2.0)),
        ]);
        let mut rng = rng_for(3, k as u64);
        let v: Vec<f64> = (0..k).map(|_| rng.gen_range(-1.0..2.0)).collect();
        group.bench_with_input(BenchmarkId::new("box_halfspace_exact", k), &k, |b, _| {
            b.iter(|| {
                let mut x = v.clone();
                exact.project(&mut x);
                std::hint::black_box(x)
            });
        });
        group.bench_with_input(BenchmarkId::new("dykstra_3set", k), &k, |b, _| {
            b.iter(|| {
                let mut x = v.clone();
                dyk.project(&mut x);
                std::hint::black_box(x)
            });
        });
    }
    group.finish();
}

fn bench_descent(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_shot_descent");
    group.sample_size(20);
    for &k in &[20usize, 80] {
        let p = problem(k, 7);
        let anchor = FracDecision { x: vec![0.2; k], rho: 2.0 };
        let mu = vec![0.5; k + 1];
        group.bench_with_input(BenchmarkId::new("descend", k), &k, |b, _| {
            b.iter(|| std::hint::black_box(p.descend(&anchor, &mu, 0.3)));
        });
        group.bench_with_input(BenchmarkId::new("hindsight", k), &k, |b, _| {
            b.iter(|| std::hint::black_box(fedl_core::regret::hindsight_optimum(&p)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_projections, bench_descent);
criterion_main!(benches);
