//! Microbenchmarks of the projection toolkit and the one-shot descent
//! step at realistic problem sizes (K ≈ number of available clients).

use fedl_bench::timing::{bench, group};
use fedl_core::objective::{FracDecision, OneShot};
use fedl_linalg::rng::{rng_for, Rng};
use fedl_solver::{BoxHalfspace, BoxSet, DykstraIntersection, Halfspace, Project};

fn problem(k: usize, seed: u64) -> OneShot {
    let mut rng = rng_for(seed, k as u64);
    OneShot {
        ids: (0..k).collect(),
        tau: (0..k).map(|_| rng.gen_range(0.01..2.0)).collect(),
        costs: (0..k).map(|_| rng.gen_range(0.1..12.0)).collect(),
        eta: (0..k).map(|_| rng.gen_range(0.1..0.9)).collect(),
        g: (0..k).map(|_| rng.gen_range(-1.0..0.1)).collect(),
        bonus: vec![0.0; k],
        loss_all: 1.8,
        theta: 1.0,
        min_participants: (k / 8).max(2),
        budget: 500.0,
        rho_max: 10.0,
    }
}

fn bench_projections() {
    group("projection");
    for &k in &[16usize, 64, 128] {
        let exact =
            BoxHalfspace::new(BoxSet::unit(k), Halfspace::new(vec![1.0; k], k as f64 / 3.0));
        let dyk = DykstraIntersection::new(vec![
            Box::new(BoxSet::unit(k)),
            Box::new(Halfspace::new(vec![1.0; k], k as f64 / 3.0)),
            Box::new(Halfspace::at_least(vec![1.0; k], 2.0)),
        ]);
        let mut rng = rng_for(3, k as u64);
        let v: Vec<f64> = (0..k).map(|_| rng.gen_range(-1.0..2.0)).collect();
        bench(&format!("box_halfspace_exact/{k}"), || {
            let mut x = v.clone();
            exact.project(&mut x);
            std::hint::black_box(x)
        });
        bench(&format!("dykstra_3set/{k}"), || {
            let mut x = v.clone();
            dyk.project(&mut x);
            std::hint::black_box(x)
        });
    }
}

fn bench_descent() {
    group("one_shot_descent");
    for &k in &[20usize, 80] {
        let p = problem(k, 7);
        let anchor = FracDecision { x: vec![0.2; k], rho: 2.0 };
        let mu = vec![0.5; k + 1];
        bench(&format!("descend/{k}"), || std::hint::black_box(p.descend(&anchor, &mu, 0.3)));
        bench(&format!("hindsight/{k}"), || {
            std::hint::black_box(fedl_core::regret::hindsight_optimum(&p))
        });
    }
}

fn main() {
    bench_projections();
    bench_descent();
}
