//! Property-based tests of the wireless model: physical monotonicities
//! (more distance → more loss, more bandwidth → more rate) that must
//! hold for every parameter draw.

use fedl_net::{dbm_to_watts, rate_bps, ChannelModel, ClientRadio, ComputeProfile, LatencyModel};
use proptest::prelude::*;

fn radio(gain: f64, power_dbm: f64) -> ClientRadio {
    ClientRadio { distance_m: 100.0, tx_power_dbm: power_dbm, gain }
}

proptest! {
    #[test]
    fn path_loss_monotone(d1 in 20.0f64..5000.0, factor in 1.01f64..10.0) {
        let m = ChannelModel::default();
        prop_assert!(m.path_loss_db(d1 * factor) > m.path_loss_db(d1));
    }

    #[test]
    fn rate_monotone_in_power_and_gain(
        gain in 1e-14f64..1e-6,
        power in -10.0f64..20.0,
        bw in 1e4f64..2e7,
    ) {
        let n0 = dbm_to_watts(-174.0);
        let base = rate_bps(&radio(gain, power), bw, n0);
        prop_assert!(base > 0.0 && base.is_finite());
        prop_assert!(rate_bps(&radio(gain * 2.0, power), bw, n0) > base);
        prop_assert!(rate_bps(&radio(gain, power + 3.0), bw, n0) > base);
    }

    #[test]
    fn rate_increases_with_bandwidth(
        gain in 1e-12f64..1e-7,
        bw in 1e5f64..1e7,
        factor in 1.1f64..5.0,
    ) {
        // Total rate grows with bandwidth (though sub-linearly in SNR).
        let n0 = dbm_to_watts(-174.0);
        let r1 = rate_bps(&radio(gain, 10.0), bw, n0);
        let r2 = rate_bps(&radio(gain, 10.0), bw * factor, n0);
        prop_assert!(r2 > r1, "{r2} <= {r1}");
        // But not super-linearly.
        prop_assert!(r2 < r1 * factor + 1e-6);
    }

    #[test]
    fn compute_latency_scales_linearly(
        cycles in 10.0f64..30.0,
        cpu in 0.5e9f64..2e9,
        bits in 1e3f64..1e7,
        k in 2.0f64..10.0,
    ) {
        let c = ComputeProfile { cycles_per_bit: cycles, cpu_hz: cpu };
        let t1 = c.local_update_secs(bits);
        let tk = c.local_update_secs(bits * k);
        prop_assert!((tk - k * t1).abs() < 1e-9 * tk.max(1.0));
    }

    #[test]
    fn epoch_latency_dominated_by_slowest(
        gains in proptest::collection::vec(1e-12f64..1e-8, 2..6),
        samples in proptest::collection::vec(1usize..200, 2..6),
    ) {
        let n = gains.len().min(samples.len());
        let radios: Vec<ClientRadio> = gains[..n].iter().map(|&g| radio(g, 10.0)).collect();
        let computes: Vec<ComputeProfile> =
            (0..n).map(|_| ComputeProfile { cycles_per_bit: 20.0, cpu_hz: 1e9 }).collect();
        let model = LatencyModel::paper_defaults(1e5, 6272.0);
        let r: Vec<&ClientRadio> = radios.iter().collect();
        let c: Vec<&ComputeProfile> = computes.iter().collect();
        let per = model.per_iteration_secs(&r, &c, &samples[..n]);
        let epoch = model.epoch_secs(&r, &c, &samples[..n], 4);
        let max = per.iter().copied().fold(0.0f64, f64::max);
        prop_assert!((epoch - 4.0 * max).abs() < 1e-9);
        prop_assert!(per.iter().all(|&t| t > 0.0 && t.is_finite()));
    }
}
