//! FDMA rate computation and bandwidth allocation.

use crate::channel::ClientRadio;
use crate::dbm_to_watts;

/// Shannon rate `b·log₂(1 + h·p/(N₀·b))` in bits/s for one client given
/// its allocated bandwidth `b` (Hz) and the noise density `n0` (W/Hz).
///
/// # Panics
/// Panics on non-positive bandwidth or noise density.
pub fn rate_bps(radio: &ClientRadio, bandwidth_hz: f64, n0_watts_per_hz: f64) -> f64 {
    assert!(bandwidth_hz > 0.0, "non-positive bandwidth");
    assert!(n0_watts_per_hz > 0.0, "non-positive noise density");
    let snr = radio.received_power_watts() / (n0_watts_per_hz * bandwidth_hz);
    bandwidth_hz * (1.0 + snr).log2()
}

/// Equal-share FDMA: the total bandwidth `total_hz` is split evenly over
/// the `radios` (the paper's participants all upload concurrently under
/// `Σ b_{t,k} = B`). Returns per-client rates in bits/s; an empty
/// selection returns an empty vector.
pub fn equal_share_rates(radios: &[&ClientRadio], total_hz: f64, n0_dbm_per_hz: f64) -> Vec<f64> {
    if radios.is_empty() {
        return Vec::new();
    }
    let n0 = dbm_to_watts(n0_dbm_per_hz);
    let share = total_hz / radios.len() as f64;
    radios.iter().map(|r| rate_bps(r, share, n0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelModel;
    use fedl_linalg::rng::rng_for;

    fn radio(gain: f64) -> ClientRadio {
        ClientRadio { distance_m: 100.0, tx_power_dbm: 10.0, gain }
    }

    #[test]
    fn known_rate_value() {
        // SNR contrived to exactly 1: rate = b·log2(2) = b.
        let b = 1e6;
        let n0 = 1e-12;
        let p = 0.01; // 10 dBm
        let gain = n0 * b / p; // h·p = N0·b -> SNR 1
        let r = rate_bps(&radio(gain), b, n0);
        assert!((r - b).abs() / b < 1e-12, "{r}");
    }

    #[test]
    fn rate_monotone_in_gain() {
        let b = 1e6;
        let n0 = dbm_to_watts(-174.0);
        let lo = rate_bps(&radio(1e-10), b, n0);
        let hi = rate_bps(&radio(1e-8), b, n0);
        assert!(hi > lo);
    }

    #[test]
    fn splitting_bandwidth_lowers_per_client_rate() {
        let m = ChannelModel::default();
        let mut rng = rng_for(1, 0);
        let radios: Vec<ClientRadio> =
            (0..4).map(|_| m.make_radio(200.0, 10.0, &mut rng)).collect();
        let solo = equal_share_rates(&[&radios[0]], 20e6, -174.0)[0];
        let refs: Vec<&ClientRadio> = radios.iter().collect();
        let shared = equal_share_rates(&refs, 20e6, -174.0)[0];
        assert!(shared < solo, "sharing must not increase the rate");
        // But not by more than the bandwidth factor (log term helps).
        assert!(shared > solo / 8.0);
    }

    #[test]
    fn empty_selection_is_empty() {
        assert!(equal_share_rates(&[], 20e6, -174.0).is_empty());
    }

    #[test]
    fn realistic_cell_rates_are_plausible() {
        // A 10 dBm client at 100-500 m over a 20 MHz/10-way split should
        // land in the hundreds-of-kbps to tens-of-Mbps range — sanity for
        // the latency magnitudes in the experiments.
        let m = ChannelModel::default();
        let mut rng = rng_for(2, 0);
        for d in [100.0, 300.0, 500.0] {
            let r = m.make_radio(d, 10.0, &mut rng);
            let rate = equal_share_rates(&[&r], 2e6, -174.0)[0];
            assert!(rate > 1e4 && rate < 1e9, "rate {rate} at {d} m");
        }
    }

    #[test]
    #[should_panic(expected = "non-positive bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = rate_bps(&radio(1e-9), 0.0, 1e-20);
    }
}
