//! Per-client latency: local computation plus uplink transmission
//! (paper §3.2).

use crate::channel::ClientRadio;
use crate::fdma::equal_share_rates;

/// A client's computation capability.
#[derive(Debug, Clone, Copy)]
pub struct ComputeProfile {
    /// CPU cycles needed per *bit* of training data (paper: U[10, 30]).
    pub cycles_per_bit: f64,
    /// CPU frequency π_k in Hz (paper: up to 2 GHz).
    pub cpu_hz: f64,
}

impl ComputeProfile {
    /// Computation time of one local update over `data_bits` of training
    /// data: `τ^loc = e_k·bits/π_k`.
    ///
    /// # Panics
    /// Panics on a non-positive CPU frequency.
    pub fn local_update_secs(&self, data_bits: f64) -> f64 {
        assert!(self.cpu_hz > 0.0, "non-positive CPU frequency");
        self.cycles_per_bit * data_bits / self.cpu_hz
    }
}

/// The full latency model for one epoch's selected cohort.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Total uplink bandwidth `B` in Hz (paper: 20 MHz).
    pub bandwidth_hz: f64,
    /// Noise power density in dBm/Hz (paper: −174).
    pub noise_dbm_per_hz: f64,
    /// Upload payload `s` in bits — the model update size, constant
    /// across clients because the model dimension is fixed (§3.2).
    pub upload_bits: f64,
    /// Bits per training sample (feature bytes × 8), used to turn sample
    /// counts into `data_bits` for the computation model.
    pub bits_per_sample: f64,
}

/// One client's per-iteration latency, separated into its two phases
/// (paper §3.2: `τ = τ^loc + τ^cm`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySplit {
    /// Local-computation time `τ^loc` in seconds.
    pub compute_secs: f64,
    /// Uplink transmission time `τ^cm` in seconds.
    pub upload_secs: f64,
}

impl LatencySplit {
    /// Total per-iteration latency `τ^loc + τ^cm`.
    pub fn total_secs(&self) -> f64 {
        self.compute_secs + self.upload_secs
    }
}

impl LatencyModel {
    /// Paper-default parameters for a model with `upload_bits` payload
    /// and `bits_per_sample` sample width.
    pub fn paper_defaults(upload_bits: f64, bits_per_sample: f64) -> Self {
        Self { bandwidth_hz: 20e6, noise_dbm_per_hz: -174.0, upload_bits, bits_per_sample }
    }

    /// Per-iteration latency of each selected client, split into
    /// computation and upload components (`τ^loc_{t,k}`, `τ^cm_{t,k}`),
    /// where the FDMA bandwidth is shared equally among the cohort.
    /// `samples[k]` is client `k`'s current data volume `D_{t,k}`.
    ///
    /// # Panics
    /// Panics if the slice lengths disagree.
    pub fn per_iteration_split(
        &self,
        radios: &[&ClientRadio],
        computes: &[&ComputeProfile],
        samples: &[usize],
    ) -> Vec<LatencySplit> {
        assert_eq!(radios.len(), computes.len(), "radio/compute length mismatch");
        assert_eq!(radios.len(), samples.len(), "radio/sample length mismatch");
        let rates = equal_share_rates(radios, self.bandwidth_hz, self.noise_dbm_per_hz);
        rates
            .iter()
            .zip(computes)
            .zip(samples)
            .map(|((&rate, compute), &n)| LatencySplit {
                compute_secs: compute.local_update_secs(n as f64 * self.bits_per_sample),
                upload_secs: self.upload_bits / rate.max(1e-3),
            })
            .collect()
    }

    /// Per-iteration total latency `τ^loc_{t,k} + τ^cm_{t,k}` of each
    /// selected client (the sum of the [`Self::per_iteration_split`]
    /// components).
    ///
    /// # Panics
    /// Panics if the slice lengths disagree.
    pub fn per_iteration_secs(
        &self,
        radios: &[&ClientRadio],
        computes: &[&ComputeProfile],
        samples: &[usize],
    ) -> Vec<f64> {
        self.per_iteration_split(radios, computes, samples)
            .into_iter()
            .map(|s| s.total_secs())
            .collect()
    }

    /// Epoch latency of the cohort (paper eq. (2)): the slowest client's
    /// per-iteration latency times the iteration count `l_t`.
    pub fn epoch_secs(
        &self,
        radios: &[&ClientRadio],
        computes: &[&ComputeProfile],
        samples: &[usize],
        iterations: usize,
    ) -> f64 {
        let per_iter = self.per_iteration_secs(radios, computes, samples);
        let slowest = per_iter.into_iter().fold(0.0f64, f64::max);
        slowest * iterations as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelModel;
    use fedl_linalg::rng::rng_for;

    fn cohort(n: usize) -> (Vec<ClientRadio>, Vec<ComputeProfile>) {
        let m = ChannelModel::default();
        let mut rng = rng_for(1, 0);
        let radios = (0..n).map(|_| m.make_radio(200.0, 10.0, &mut rng)).collect();
        let computes =
            (0..n).map(|_| ComputeProfile { cycles_per_bit: 20.0, cpu_hz: 2e9 }).collect();
        (radios, computes)
    }

    #[test]
    fn compute_latency_formula() {
        let c = ComputeProfile { cycles_per_bit: 20.0, cpu_hz: 2e9 };
        // 20 cycles/bit * 1e6 bits / 2e9 Hz = 0.01 s.
        assert!((c.local_update_secs(1e6) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn epoch_latency_scales_with_iterations() {
        let (radios, computes) = cohort(3);
        let model = LatencyModel::paper_defaults(1e5, 6272.0);
        let r: Vec<&ClientRadio> = radios.iter().collect();
        let c: Vec<&ComputeProfile> = computes.iter().collect();
        let one = model.epoch_secs(&r, &c, &[50, 50, 50], 1);
        let five = model.epoch_secs(&r, &c, &[50, 50, 50], 5);
        assert!((five - 5.0 * one).abs() < 1e-9);
    }

    #[test]
    fn epoch_latency_is_max_of_clients() {
        let (radios, computes) = cohort(3);
        let model = LatencyModel::paper_defaults(1e5, 6272.0);
        let r: Vec<&ClientRadio> = radios.iter().collect();
        let c: Vec<&ComputeProfile> = computes.iter().collect();
        let per = model.per_iteration_secs(&r, &c, &[10, 500, 10]);
        let epoch = model.epoch_secs(&r, &c, &[10, 500, 10], 1);
        let max = per.iter().copied().fold(0.0f64, f64::max);
        assert_eq!(epoch, max);
        // The data-heavy client dominates.
        assert!(per[1] > per[0]);
    }

    #[test]
    fn more_data_means_more_compute_time() {
        let (radios, computes) = cohort(1);
        let model = LatencyModel::paper_defaults(1e5, 6272.0);
        let small = model.per_iteration_secs(&[&radios[0]], &[&computes[0]], &[10])[0];
        let large = model.per_iteration_secs(&[&radios[0]], &[&computes[0]], &[1000])[0];
        assert!(large > small);
    }

    #[test]
    fn bigger_cohort_slows_uploads() {
        let (radios, computes) = cohort(8);
        let model = LatencyModel::paper_defaults(1e6, 6272.0);
        let solo = model.per_iteration_secs(&[&radios[0]], &[&computes[0]], &[1])[0];
        let r: Vec<&ClientRadio> = radios.iter().collect();
        let c: Vec<&ComputeProfile> = computes.iter().collect();
        let crowded = model.per_iteration_secs(&r, &c, &[1; 8])[0];
        assert!(crowded > solo, "FDMA sharing must slow the upload");
    }

    #[test]
    fn empty_cohort_zero_latency() {
        let model = LatencyModel::paper_defaults(1e5, 6272.0);
        assert_eq!(model.epoch_secs(&[], &[], &[], 7), 0.0);
    }

    #[test]
    fn split_components_sum_to_total() {
        let (radios, computes) = cohort(4);
        let model = LatencyModel::paper_defaults(1e6, 6272.0);
        let r: Vec<&ClientRadio> = radios.iter().collect();
        let c: Vec<&ComputeProfile> = computes.iter().collect();
        let samples = [10, 200, 40, 5];
        let splits = model.per_iteration_split(&r, &c, &samples);
        let totals = model.per_iteration_secs(&r, &c, &samples);
        assert_eq!(splits.len(), 4);
        for (split, total) in splits.iter().zip(&totals) {
            assert!(split.compute_secs > 0.0);
            assert!(split.upload_secs > 0.0);
            assert!((split.total_secs() - total).abs() < 1e-15);
        }
    }
}
