//! Optimal FDMA bandwidth allocation.
//!
//! The paper takes the per-client bandwidths `b_{t,k}` as given subject
//! to `Σ b = B` (the simulator's default splits equally). Its reference
//! \[24\] (Shi et al.) *jointly optimizes* the split; this module provides
//! that upgrade: the min-makespan allocation that equalizes completion
//! times.
//!
//! Formally: client `k` finishes at `t_k + s / r_k(b_k)` where `t_k` is
//! its compute time and `r_k(b) = b·log₂(1 + p_k/(N₀·b))` its rate.
//! `r_k` is increasing and concave in `b`, so for any deadline `T` the
//! minimum bandwidth `b_k(T)` that meets it is well defined and
//! decreasing in `T` — the feasibility frontier `Σ_k b_k(T) ≤ B` is
//! monotone and the optimal makespan is found by bisection, with an
//! inner bisection inverting `r_k`.

use crate::channel::ClientRadio;
use crate::fdma::rate_bps;

/// Result of a min-makespan allocation.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Bandwidth per client in Hz, summing to (at most) the total.
    pub bandwidth_hz: Vec<f64>,
    /// The achieved makespan in seconds (max over clients of
    /// compute + upload).
    pub makespan_secs: f64,
}

/// Smallest bandwidth at which `radio` reaches `target_rate` bps, found
/// by bisection over `[lo_hint, total]`; `None` if even the full band is
/// not enough.
fn bandwidth_for_rate(
    radio: &ClientRadio,
    target_rate: f64,
    total_hz: f64,
    n0: f64,
) -> Option<f64> {
    debug_assert!(target_rate > 0.0);
    if rate_bps(radio, total_hz, n0) < target_rate {
        return None;
    }
    let mut lo = 1e-3;
    let mut hi = total_hz;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if rate_bps(radio, mid, n0) >= target_rate {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// Computes the min-makespan bandwidth split for one federated upload
/// round.
///
/// # Examples
///
/// ```
/// use fedl_net::{dbm_to_watts, min_makespan, ClientRadio};
///
/// let near = ClientRadio { distance_m: 50.0, tx_power_dbm: 10.0, gain: 1e-8 };
/// let far = ClientRadio { distance_m: 450.0, tx_power_dbm: 10.0, gain: 1e-11 };
/// let alloc = min_makespan(
///     &[&near, &far],
///     &[0.0, 0.0],
///     1e6,
///     20e6,
///     dbm_to_watts(-174.0),
/// )
/// .unwrap();
/// // The weak channel receives the larger share.
/// assert!(alloc.bandwidth_hz[1] > alloc.bandwidth_hz[0]);
/// ```
///
/// * `radios` — cohort channel states;
/// * `compute_secs[k]` — client `k`'s computation time this iteration;
/// * `upload_bits` — payload size `s` (identical for all clients, §3.2);
/// * `total_hz` — the cell bandwidth `B`;
/// * `n0_watts_per_hz` — noise density.
///
/// Returns `None` for an empty cohort.
///
/// # Panics
/// Panics on non-positive bandwidth/payload or mismatched lengths.
pub fn min_makespan(
    radios: &[&ClientRadio],
    compute_secs: &[f64],
    upload_bits: f64,
    total_hz: f64,
    n0_watts_per_hz: f64,
) -> Option<Allocation> {
    assert_eq!(radios.len(), compute_secs.len(), "radio/compute arity");
    assert!(total_hz > 0.0 && upload_bits > 0.0, "non-positive inputs");
    assert!(n0_watts_per_hz > 0.0, "non-positive noise density");
    if radios.is_empty() {
        return None;
    }

    // Feasibility of a deadline T: every client needs rate
    // s/(T - t_k); infeasible if T <= t_k for any k.
    let demand = |deadline: f64| -> Option<Vec<f64>> {
        let mut bands = Vec::with_capacity(radios.len());
        let mut used = 0.0;
        for (radio, &t_k) in radios.iter().zip(compute_secs) {
            let slack = deadline - t_k;
            if slack <= 0.0 {
                return None;
            }
            let b = bandwidth_for_rate(radio, upload_bits / slack, total_hz, n0_watts_per_hz)?;
            used += b;
            if used > total_hz * (1.0 + 1e-9) {
                return None;
            }
            bands.push(b);
        }
        Some(bands)
    };

    // Bracket the optimal deadline: the equal-share makespan is always
    // feasible, so it upper-bounds the optimum.
    let share = total_hz / radios.len() as f64;
    let mut hi = radios
        .iter()
        .zip(compute_secs)
        .map(|(r, &t)| t + upload_bits / rate_bps(r, share, n0_watts_per_hz).max(1e-9))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let mut lo = compute_secs.iter().copied().fold(0.0f64, f64::max);
    // Track the tightest feasible allocation seen — the bisection
    // endpoint itself can graze the boundary within float error.
    let mut best = demand(hi * (1.0 + 1e-9));
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        match demand(mid) {
            Some(bands) => {
                best = Some(bands);
                hi = mid;
            }
            None => lo = mid,
        }
    }
    let mut bandwidth_hz = best.expect("equal share is always feasible");
    // Hand out any numerical leftovers proportionally (never hurts).
    let used: f64 = bandwidth_hz.iter().sum();
    if used < total_hz {
        let scale = total_hz / used;
        for b in &mut bandwidth_hz {
            *b *= scale;
        }
    }
    let makespan_secs = radios
        .iter()
        .zip(compute_secs)
        .zip(&bandwidth_hz)
        .map(|((r, &t), &b)| t + upload_bits / rate_bps(r, b, n0_watts_per_hz))
        .fold(0.0f64, f64::max);
    Some(Allocation { bandwidth_hz, makespan_secs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelModel;
    use crate::dbm_to_watts;
    use fedl_linalg::rng::rng_for;

    fn cohort(n: usize, seed: u64) -> Vec<ClientRadio> {
        let m = ChannelModel::default();
        let mut rng = rng_for(seed, 0);
        (0..n).map(|i| m.make_radio(50.0 + 80.0 * i as f64, 10.0, &mut rng)).collect()
    }

    fn equal_share_makespan(
        radios: &[&ClientRadio],
        compute: &[f64],
        s: f64,
        b: f64,
        n0: f64,
    ) -> f64 {
        let share = b / radios.len() as f64;
        radios
            .iter()
            .zip(compute)
            .map(|(r, &t)| t + s / rate_bps(r, share, n0))
            .fold(0.0f64, f64::max)
    }

    #[test]
    fn never_worse_than_equal_share() {
        let n0 = dbm_to_watts(-174.0);
        for seed in 0..10 {
            let radios = cohort(5, seed);
            let refs: Vec<&ClientRadio> = radios.iter().collect();
            let compute = vec![0.01, 0.05, 0.002, 0.03, 0.08];
            let alloc = min_makespan(&refs, &compute, 1e6, 20e6, n0).unwrap();
            let baseline = equal_share_makespan(&refs, &compute, 1e6, 20e6, n0);
            assert!(
                alloc.makespan_secs <= baseline * (1.0 + 1e-6),
                "seed {seed}: optimal {} > equal {}",
                alloc.makespan_secs,
                baseline
            );
        }
    }

    #[test]
    fn allocation_sums_to_total_and_is_positive() {
        let n0 = dbm_to_watts(-174.0);
        let radios = cohort(4, 3);
        let refs: Vec<&ClientRadio> = radios.iter().collect();
        let alloc = min_makespan(&refs, &[0.0; 4], 1e6, 20e6, n0).unwrap();
        let total: f64 = alloc.bandwidth_hz.iter().sum();
        assert!((total - 20e6).abs() < 20e6 * 1e-6, "total {total}");
        assert!(alloc.bandwidth_hz.iter().all(|&b| b > 0.0));
    }

    #[test]
    fn weak_channels_get_more_bandwidth() {
        let n0 = dbm_to_watts(-174.0);
        let strong = ClientRadio { distance_m: 50.0, tx_power_dbm: 10.0, gain: 1e-8 };
        let weak = ClientRadio { distance_m: 450.0, tx_power_dbm: 10.0, gain: 1e-11 };
        let alloc = min_makespan(&[&strong, &weak], &[0.0, 0.0], 1e6, 20e6, n0).unwrap();
        assert!(
            alloc.bandwidth_hz[1] > alloc.bandwidth_hz[0],
            "weak channel should receive more bandwidth: {:?}",
            alloc.bandwidth_hz
        );
    }

    #[test]
    fn completion_times_are_equalized() {
        // At the optimum (with no compute skew) everyone finishes
        // together — the classic makespan balance condition.
        let n0 = dbm_to_watts(-174.0);
        let radios = cohort(4, 5);
        let refs: Vec<&ClientRadio> = radios.iter().collect();
        let alloc = min_makespan(&refs, &[0.0; 4], 1e6, 20e6, n0).unwrap();
        let times: Vec<f64> =
            refs.iter().zip(&alloc.bandwidth_hz).map(|(r, &b)| 1e6 / rate_bps(r, b, n0)).collect();
        let max = times.iter().copied().fold(0.0f64, f64::max);
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min < 1.05, "unbalanced completion times {times:?}");
    }

    #[test]
    fn empty_cohort_is_none() {
        assert!(min_makespan(&[], &[], 1e6, 20e6, 1e-20).is_none());
    }

    #[test]
    fn single_client_gets_everything() {
        let n0 = dbm_to_watts(-174.0);
        let radios = cohort(1, 7);
        let alloc = min_makespan(&[&radios[0]], &[0.02], 1e6, 20e6, n0).unwrap();
        assert!((alloc.bandwidth_hz[0] - 20e6).abs() < 20e6 * 1e-6);
        assert!(alloc.makespan_secs > 0.02);
    }
}
