//! Path loss, shadow fading, and per-client channel gains.

use fedl_linalg::rng::{Distribution, Normal, Rng};

use crate::dbm_to_watts;

/// Static radio parameters of one client.
#[derive(Debug, Clone, Copy)]
pub struct ClientRadio {
    /// Distance to the server in metres.
    pub distance_m: f64,
    /// Transmit power in dBm (paper: up to 10 dBm).
    pub tx_power_dbm: f64,
    /// Linear channel gain `h_k` (includes path loss and shadowing).
    pub gain: f64,
}

impl ClientRadio {
    /// Transmit power in watts.
    pub fn tx_power_watts(&self) -> f64 {
        dbm_to_watts(self.tx_power_dbm)
    }

    /// Received signal power `h_k · p_k` in watts.
    pub fn received_power_watts(&self) -> f64 {
        self.gain * self.tx_power_watts()
    }
}

/// The cell's propagation model (paper §6.1).
#[derive(Debug, Clone, Copy)]
pub struct ChannelModel {
    /// Shadow-fading standard deviation in dB (paper: 8 dB).
    pub shadowing_std_db: f64,
    /// Minimum client–server distance in metres; keeps the log-distance
    /// model out of its near-field singularity.
    pub min_distance_m: f64,
}

impl Default for ChannelModel {
    fn default() -> Self {
        Self { shadowing_std_db: 8.0, min_distance_m: 10.0 }
    }
}

impl ChannelModel {
    /// Deterministic path loss in dB at distance `d` metres:
    /// `128.1 + 37.6·log₁₀(d_km)`.
    pub fn path_loss_db(&self, distance_m: f64) -> f64 {
        let d_km = (distance_m.max(self.min_distance_m)) / 1000.0;
        128.1 + 37.6 * d_km.log10()
    }

    /// Samples a channel gain at `distance_m`, combining path loss with a
    /// fresh log-normal shadowing draw.
    pub fn sample_gain(&self, distance_m: f64, rng: &mut impl Rng) -> f64 {
        let shadow = Normal::new(0.0, self.shadowing_std_db).sample(rng);
        let loss_db = self.path_loss_db(distance_m) + shadow;
        10f64.powf(-loss_db / 10.0)
    }

    /// Builds a client radio at `distance_m` with the given power.
    pub fn make_radio(
        &self,
        distance_m: f64,
        tx_power_dbm: f64,
        rng: &mut impl Rng,
    ) -> ClientRadio {
        ClientRadio { distance_m, tx_power_dbm, gain: self.sample_gain(distance_m, rng) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedl_linalg::rng::rng_for;

    #[test]
    fn path_loss_reference_values() {
        let m = ChannelModel::default();
        // At 1 km the formula gives exactly 128.1 dB.
        assert!((m.path_loss_db(1000.0) - 128.1).abs() < 1e-9);
        // At 100 m: 128.1 - 37.6 = 90.5 dB.
        assert!((m.path_loss_db(100.0) - 90.5).abs() < 1e-9);
    }

    #[test]
    fn path_loss_monotone_in_distance() {
        let m = ChannelModel::default();
        let mut prev = m.path_loss_db(20.0);
        for d in [50.0, 100.0, 250.0, 500.0] {
            let pl = m.path_loss_db(d);
            assert!(pl > prev, "path loss must grow with distance");
            prev = pl;
        }
    }

    #[test]
    fn near_field_clamped() {
        let m = ChannelModel::default();
        assert_eq!(m.path_loss_db(0.0), m.path_loss_db(m.min_distance_m));
        assert_eq!(m.path_loss_db(3.0), m.path_loss_db(10.0));
    }

    #[test]
    fn gains_positive_and_distance_ordered_on_average() {
        let m = ChannelModel::default();
        let mut rng = rng_for(1, 0);
        let mean_gain = |d: f64, rng: &mut fedl_linalg::rng::Xoshiro256pp| {
            (0..400).map(|_| m.sample_gain(d, rng)).sum::<f64>() / 400.0
        };
        let near = mean_gain(50.0, &mut rng);
        let far = mean_gain(450.0, &mut rng);
        assert!(near > 0.0 && far > 0.0);
        assert!(near > far * 5.0, "near {near} vs far {far}");
    }

    #[test]
    fn shadowing_produces_variation() {
        let m = ChannelModel::default();
        let mut rng = rng_for(2, 0);
        let g1 = m.sample_gain(200.0, &mut rng);
        let g2 = m.sample_gain(200.0, &mut rng);
        assert_ne!(g1, g2);
    }

    #[test]
    fn radio_power_accounting() {
        let m = ChannelModel::default();
        let mut rng = rng_for(3, 0);
        let r = m.make_radio(100.0, 10.0, &mut rng);
        assert!((r.tx_power_watts() - 0.01).abs() < 1e-12); // 10 dBm = 10 mW
        assert!((r.received_power_watts() - r.gain * 0.01).abs() < 1e-18);
    }
}
