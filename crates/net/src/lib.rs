//! Wireless edge-network model for the FedL reproduction (paper §3.2 and
//! §6.1).
//!
//! The simulated testbed is a 500 m-radius cell with the server at the
//! centre. Per the paper's settings:
//!
//! * path loss `128.1 + 37.6·log₁₀(d)` dB with `d` in kilometres;
//! * log-normal shadow fading with 8 dB standard deviation;
//! * Gaussian noise power density `N₀ = −174` dBm/Hz;
//! * total uplink bandwidth `B = 20` MHz, shared by the selected clients
//!   via FDMA: `r_{t,k} = b_{t,k}·log₂(1 + h_k·p_k / (N₀·b_{t,k}))`;
//! * client transmit power up to 10 dBm, CPU up to 2 GHz, and a
//!   per-sample training cost of 10–30 cycles/bit.
//!
//! [`channel`] computes gains, [`fdma`] allocates bandwidth and computes
//! achievable rates, and [`latency`] combines them with the computation
//! model `τ^loc = e_k·bits(D_{t,k})/π_k` into the per-client epoch
//! latency `d_k(t) = l_t·(τ^loc + τ^cm)`.
//!
//! System-inventory row **S4** in DESIGN.md §1.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod allocation;
pub mod channel;
pub mod fdma;
pub mod latency;

pub use allocation::{min_makespan, Allocation};
pub use channel::{ChannelModel, ClientRadio};
pub use fdma::{equal_share_rates, rate_bps};
pub use latency::{ComputeProfile, LatencyModel, LatencySplit};

/// Converts dBm to watts.
#[inline]
pub fn dbm_to_watts(dbm: f64) -> f64 {
    10f64.powf((dbm - 30.0) / 10.0)
}

/// Converts a dB power *ratio* to linear scale.
#[inline]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_conversions() {
        assert!((dbm_to_watts(30.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_watts(0.0) - 1e-3).abs() < 1e-15);
        // The paper's noise density: -174 dBm/Hz ≈ 3.98e-21 W/Hz.
        let n0 = dbm_to_watts(-174.0);
        assert!((n0 - 3.981e-21).abs() < 1e-23, "{n0}");
    }

    #[test]
    fn db_ratio_conversions() {
        assert!((db_to_linear(0.0) - 1.0).abs() < 1e-12);
        assert!((db_to_linear(10.0) - 10.0).abs() < 1e-12);
        assert!((db_to_linear(-3.0) - 0.501187).abs() < 1e-5);
    }
}
