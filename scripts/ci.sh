#!/usr/bin/env bash
# Tier-1 verification: hermetic offline build + tests + docs.
#
# --offline is load-bearing: the workspace must never need the crates.io
# registry (see docs/BUILD.md). A PR that introduces a registry
# dependency fails here at dependency resolution, before compiling.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo doc --no-deps --offline"
RUSTDOCFLAGS="${RUSTDOCFLAGS:--D warnings}" cargo doc --no-deps --offline --workspace

# Telemetry smoke: a real run must emit a parseable JSONL log holding
# every event kind in the schema (docs/TELEMETRY.md), and the
# telemetry-report subcommand must accept it.
echo "==> telemetry run log round-trip"
cargo run --release --offline --example regret_and_trace > /dev/null
cargo run --release --offline -p fedl-bench --bin experiments -- \
    telemetry-report results/regret_trace_run.jsonl \
    --require run_start,epoch,train,ledger,span,metrics,run_end

echo "==> OK"
