#!/usr/bin/env bash
# Tier-1 verification: hermetic offline build + tests + docs.
#
# --offline is load-bearing: the workspace must never need the crates.io
# registry (see docs/BUILD.md). A PR that introduces a registry
# dependency fails here at dependency resolution, before compiling.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo doc --no-deps --offline"
RUSTDOCFLAGS="${RUSTDOCFLAGS:--D warnings}" cargo doc --no-deps --offline --workspace

echo "==> OK"
