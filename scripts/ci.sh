#!/usr/bin/env bash
# Tier-1 verification: hermetic offline build + tests + docs.
#
# --offline is load-bearing: the workspace must never need the crates.io
# registry (see docs/BUILD.md). A PR that introduces a registry
# dependency fails here at dependency resolution, before compiling.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo doc --no-deps --offline"
RUSTDOCFLAGS="${RUSTDOCFLAGS:--D warnings}" cargo doc --no-deps --offline --workspace

# Telemetry smoke: a real run must emit a parseable JSONL log holding
# every event kind in the schema (docs/TELEMETRY.md), and the
# telemetry-report subcommand must accept it.
echo "==> telemetry run log round-trip"
cargo run --release --offline --example regret_and_trace > /dev/null
cargo run --release --offline -p fedl-bench --bin experiments -- \
    telemetry-report results/regret_trace_run.jsonl \
    --require run_start,epoch,train,ledger,span,metrics,run_end

# Checkpoint round-trip (docs/CHECKPOINT.md): run a few epochs, "kill"
# the process, resume from the snapshot, and demand a bit-identical
# RunOutcome. The example exits non-zero on any divergence; the report
# then proves the save/restore events actually flowed through telemetry.
echo "==> checkpoint interrupt/resume round-trip"
cargo run --release --offline --example checkpoint_resume > /dev/null
cargo run --release --offline -p fedl-bench --bin experiments -- \
    telemetry-report results/checkpoint_run.jsonl \
    --require checkpoint.saved,checkpoint.restored,epoch,run_start,run_end

# Warm result cache: a repeat figure invocation must be served from the
# content-addressed cache (cache.hit required in the run log) and must
# regenerate byte-identical CSVs.
echo "==> warm result cache serves identical figures"
CACHE_OUT=target/ci_cache_stage
rm -rf "$CACHE_OUT"
cargo run --release --offline -p fedl-bench --bin experiments -- \
    --quick --out "$CACHE_OUT" --resume fig6 > /dev/null
cp "$CACHE_OUT"/fig6_iid.csv "$CACHE_OUT"/fig6_iid.cold.csv
cp "$CACHE_OUT"/fig6_noniid.csv "$CACHE_OUT"/fig6_noniid.cold.csv
cargo run --release --offline -p fedl-bench --bin experiments -- \
    --quick --out "$CACHE_OUT" --resume fig6 > /dev/null
cmp "$CACHE_OUT"/fig6_iid.cold.csv "$CACHE_OUT"/fig6_iid.csv
cmp "$CACHE_OUT"/fig6_noniid.cold.csv "$CACHE_OUT"/fig6_noniid.csv
cargo run --release --offline -p fedl-bench --bin experiments -- \
    telemetry-report "$CACHE_OUT"/cache_run.jsonl --require cache.hit
rm -rf "$CACHE_OUT"

# Perf snapshot + regression gate (docs/OBSERVATORY.md): two quick
# snapshots taken back-to-back on the same machine must compare clean —
# the noise-aware gate exists precisely so this stage is not flaky.
echo "==> bench snapshot + regression gate"
BENCH_OUT=target/ci_bench_stage
rm -rf "$BENCH_OUT"
cargo run --release --offline -p fedl-bench --bin experiments -- \
    bench --quick --out "$BENCH_OUT/BENCH_base.json" > /dev/null
cargo run --release --offline -p fedl-bench --bin experiments -- \
    bench --quick --out "$BENCH_OUT/BENCH_new.json" > /dev/null
cargo run --release --offline -p fedl-bench --bin experiments -- \
    bench-compare "$BENCH_OUT/BENCH_base.json" "$BENCH_OUT/BENCH_new.json"
rm -rf "$BENCH_OUT"

# Attribution dashboard: the telemetry round-trip log above must render
# an HTML dashboard containing all four chart panels.
echo "==> attribution dashboard renders all four charts"
DASH_HTML=target/ci_dashboard.html
rm -f "$DASH_HTML"
cargo run --release --offline -p fedl-bench --bin experiments -- \
    dashboard results/regret_trace_run.jsonl --html "$DASH_HTML" > /dev/null
for chart in regret-curve budget-burndown selection-heatmap phase-breakdown; do
    grep -q "svg id=\"$chart\"" "$DASH_HTML" \
        || { echo "dashboard HTML is missing chart '$chart'" >&2; exit 1; }
done
rm -f "$DASH_HTML"

echo "==> OK"
