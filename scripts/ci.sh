#!/usr/bin/env bash
# Tier-1 verification: hermetic offline build + tests + docs + the
# observatory round-trips, organised as named stages.
#
#   scripts/ci.sh                 run every stage in order
#   scripts/ci.sh --list          print the stage names and exit
#   scripts/ci.sh --stage NAME    run one stage (repeatable, any order)
#
# --offline is load-bearing: the workspace must never need the crates.io
# registry (see docs/BUILD.md). A PR that introduces a registry
# dependency fails here at dependency resolution, before compiling.
set -euo pipefail
cd "$(dirname "$0")/.."

STAGES=(build test doc fmt clippy telemetry checkpoint cache bench-gate bench-history perf scale serve dist trace dashboard overlay)

run_exp() {
    cargo run --release --offline -p fedl-bench --bin experiments -- "$@"
}

# Machine-readable stage ledger (stage name -> wall seconds + status),
# written to results/ci_stages.json on every exit — including failures,
# so the artifact always shows which stage died and how long the ones
# before it took. Stages may set CI_STAGE_STATUS=skip (tool missing) or
# CI_STAGE_NOTE=<path> (surfaced in the summary and the ledger).
STAGE_JSON=results/ci_stages.json
STAGE_RECORDS=()
CURRENT_STAGE=""
CURRENT_START=0
CI_STAGE_STATUS=pass
CI_STAGE_NOTE=""

write_stage_json() {
    mkdir -p results
    {
        echo '{'
        echo '  "stages": ['
        local i last=$(( ${#STAGE_RECORDS[@]} - 1 ))
        for i in "${!STAGE_RECORDS[@]}"; do
            local sep=','
            [ "$i" -eq "$last" ] && sep=''
            echo "    ${STAGE_RECORDS[$i]}$sep"
        done
        echo '  ]'
        echo '}'
    } > "$STAGE_JSON"
}

record_stage() {
    local name=$1 seconds=$2 status=$3 note=$4
    local json="{\"stage\": \"$name\", \"seconds\": $seconds, \"status\": \"$status\""
    [ -n "$note" ] && json+=", \"note\": \"$note\""
    STAGE_RECORDS+=("$json}")
}

on_exit() {
    local code=$?
    if [ -n "$CURRENT_STAGE" ]; then
        record_stage "$CURRENT_STAGE" "$(( $(date +%s) - CURRENT_START ))" fail "$CI_STAGE_NOTE"
    fi
    [ ${#STAGE_RECORDS[@]} -gt 0 ] && write_stage_json
    exit "$code"
}
trap on_exit EXIT

stage_build() {
    cargo build --release --offline --workspace
}

stage_test() {
    cargo test -q --offline --workspace
}

stage_doc() {
    RUSTDOCFLAGS="${RUSTDOCFLAGS:--D warnings}" cargo doc --no-deps --offline --workspace
}

# Lint stages are guarded: the hermetic container may lack the rustfmt /
# clippy components, and a missing tool must not fail CI — it must say
# so, loudly, so the gap is visible in the log.
stage_fmt() {
    if cargo fmt --version > /dev/null 2>&1; then
        cargo fmt --check
    else
        echo "SKIPPED (tool missing): rustfmt is not installed"
        CI_STAGE_STATUS=skip
    fi
}

stage_clippy() {
    if cargo clippy --version > /dev/null 2>&1; then
        cargo clippy --offline --workspace -- -D warnings
    else
        echo "SKIPPED (tool missing): clippy is not installed"
        CI_STAGE_STATUS=skip
    fi
}

# Telemetry smoke: a real run must emit a parseable JSONL log holding
# every event kind in the schema (docs/TELEMETRY.md), and the
# telemetry-report subcommand must accept it.
stage_telemetry() {
    cargo run --release --offline --example regret_and_trace > /dev/null
    run_exp telemetry-report results/regret_trace_run.jsonl \
        --require run_start,epoch,train,ledger,span,metrics,run_end
}

# Checkpoint round-trip (docs/CHECKPOINT.md): run a few epochs, "kill"
# the process, resume from the snapshot, and demand a bit-identical
# RunOutcome. The example exits non-zero on any divergence; the report
# then proves the save/restore events actually flowed through telemetry.
stage_checkpoint() {
    cargo run --release --offline --example checkpoint_resume > /dev/null
    run_exp telemetry-report results/checkpoint_run.jsonl \
        --require checkpoint.saved,checkpoint.restored,epoch,run_start,run_end
}

# Warm result cache: a repeat figure invocation must be served from the
# content-addressed cache (cache.hit required in the run log) and must
# regenerate byte-identical CSVs.
stage_cache() {
    local out=target/ci_cache_stage
    rm -rf "$out"
    run_exp --quick --out "$out" --resume fig6 > /dev/null
    cp "$out"/fig6_iid.csv "$out"/fig6_iid.cold.csv
    cp "$out"/fig6_noniid.csv "$out"/fig6_noniid.cold.csv
    run_exp --quick --out "$out" --resume fig6 > /dev/null
    cmp "$out"/fig6_iid.cold.csv "$out"/fig6_iid.csv
    cmp "$out"/fig6_noniid.cold.csv "$out"/fig6_noniid.csv
    run_exp telemetry-report "$out"/cache_run.jsonl --require cache.hit
    rm -rf "$out"
}

# Perf snapshot + pairwise regression gate (docs/OBSERVATORY.md): two
# quick snapshots taken back-to-back on the same machine must compare
# clean — the noise-aware gate exists precisely so this stage is not
# flaky.
stage_bench_gate() {
    local out=target/ci_bench_stage
    rm -rf "$out"
    run_exp bench --quick --out "$out/BENCH_base.json" > /dev/null
    run_exp bench --quick --out "$out/BENCH_new.json" > /dev/null
    run_exp bench-compare "$out/BENCH_base.json" "$out/BENCH_new.json"
    rm -rf "$out"
}

# Benchmark history round-trip (docs/OBSERVATORY.md): append two quick
# snapshots to a fresh history file, gate the second against the rolling
# baseline (must pass clean — same machine, back to back), and render
# the trend report, whose HTML must contain a trend chart per kernel.
stage_bench_history() {
    local out=target/ci_bench_history
    rm -rf "$out"
    run_exp bench --quick --out "$out/s1.json" > /dev/null
    run_exp bench --quick --out "$out/s2.json" > /dev/null
    run_exp bench-history append "$out/s1.json" --history "$out/BENCH_HISTORY.jsonl"
    run_exp bench-history append "$out/s2.json" --history "$out/BENCH_HISTORY.jsonl"
    run_exp bench-history gate "$out/s2.json" --history "$out/BENCH_HISTORY.jsonl"
    run_exp bench-history report --history "$out/BENCH_HISTORY.jsonl" \
        --html "$out/trend.html" > /dev/null
    grep -q 'svg id="trend-' "$out/trend.html" \
        || { echo "trend report HTML is missing the trend charts" >&2; exit 1; }
    rm -rf "$out"
}

# Hot-kernel perf gate (docs/PERF.md): take a fresh quick snapshot at
# the *persistent* history path, append it, and gate it against the
# rolling per-machine baseline. Unlike bench-gate/bench-history (which
# use throwaway files to test the tooling itself), this stage carries
# perf state across CI runs: an integer-factor regression in any hot
# kernel fails CI here with a non-zero exit from the gate subcommand.
# The snapshot lands at results/BENCH.json so the workflow can upload
# it as an artifact next to the stage ledger.
stage_perf() {
    mkdir -p results
    run_exp bench --quick --out results/BENCH.json > /dev/null
    run_exp bench-history append results/BENCH.json --history results/BENCH_HISTORY.jsonl
    run_exp bench-history gate results/BENCH.json --history results/BENCH_HISTORY.jsonl
    CI_STAGE_NOTE="results/BENCH.json"
}

# Columnar scale tier (docs/SCALE.md): the quick suite must measure the
# 10k-tier scheduler kernels, and the snapshot must round-trip through
# the bench-history append + gate pipeline on a fresh history file (the
# v2 schema fingerprint starts its own rolling baseline).
stage_scale() {
    local out=target/ci_scale_stage
    rm -rf "$out"
    run_exp bench --quick --out "$out/BENCH.json" > /dev/null
    for kernel in scale/score_update_10k scale/rounding_10k; do
        grep -q "\"$kernel\"" "$out/BENCH.json" \
            || { echo "quick snapshot is missing the $kernel kernel" >&2; exit 1; }
    done
    run_exp bench-history append "$out/BENCH.json" --history "$out/BENCH_HISTORY.jsonl"
    run_exp bench-history gate "$out/BENCH.json" --history "$out/BENCH_HISTORY.jsonl"
    rm -rf "$out"
}

# Federation service (docs/SERVE.md): a real loadgen round-trip over
# localhost TCP, verified bit-for-bit against the in-process reference,
# then the kill + checkpoint-restart determinism check — the two halves
# of an interrupted served run concatenated must byte-compare equal to
# the uninterrupted run's selections. The quick bench snapshot must
# also carry the serve/select_1k service-path kernel.
stage_serve() {
    local out=target/ci_serve_stage
    rm -rf "$out"
    mkdir -p "$out"
    local scenario=(--clients 40 --seed 11 --budget 1000000 --min-participants 3 --policy fedl)
    # Compile up front so the backgrounded server below starts serving
    # immediately instead of racing the port-file wait against a cold
    # release build (and so two cargo invocations never contend for the
    # build-directory lock).
    cargo build --release --offline -p fedl-bench

    # Uninterrupted served run over TCP, checked against the reference.
    run_exp serve --addr 127.0.0.1:0 --port-file "$out/port" "${scenario[@]}" &
    local server_pid=$!
    for _ in $(seq 300); do [ -s "$out/port" ] && break; sleep 0.1; done
    [ -s "$out/port" ] || { echo "server never wrote its port file" >&2; exit 1; }
    local addr="127.0.0.1:$(cat "$out/port")"
    run_exp loadgen --addr "$addr" "${scenario[@]}" --epochs 12 \
        --out "$out/full.jsonl" --verify-reference --shutdown
    wait "$server_pid"

    # Kill + restart: 6 epochs with checkpoints, shutdown, resume, 6 more.
    rm -f "$out/port"
    run_exp serve --addr 127.0.0.1:0 --port-file "$out/port" "${scenario[@]}" \
        --checkpoint "$out/ckpt.fedlstore" --checkpoint-every 2 &
    server_pid=$!
    for _ in $(seq 300); do [ -s "$out/port" ] && break; sleep 0.1; done
    addr="127.0.0.1:$(cat "$out/port")"
    run_exp loadgen --addr "$addr" "${scenario[@]}" --epochs 6 \
        --out "$out/half1.jsonl" --shutdown
    wait "$server_pid"
    rm -f "$out/port"
    run_exp serve --addr 127.0.0.1:0 --port-file "$out/port" "${scenario[@]}" \
        --checkpoint "$out/ckpt.fedlstore" --resume &
    server_pid=$!
    for _ in $(seq 300); do [ -s "$out/port" ] && break; sleep 0.1; done
    addr="127.0.0.1:$(cat "$out/port")"
    run_exp loadgen --addr "$addr" "${scenario[@]}" --epochs 6 --start-epoch 6 \
        --out "$out/half2.jsonl" --shutdown
    wait "$server_pid"
    cat "$out/half1.jsonl" "$out/half2.jsonl" | cmp - "$out/full.jsonl" \
        || { echo "restarted server diverged from the uninterrupted run" >&2; exit 1; }

    # The service-path kernel must be in the quick perf snapshot.
    run_exp bench --quick --out "$out/BENCH.json" > /dev/null
    grep -q '"serve/select_1k"' "$out/BENCH.json" \
        || { echo "quick snapshot is missing the serve/select_1k kernel" >&2; exit 1; }
    rm -rf "$out"
}

# Distributed execution (docs/DIST.md): a real 2-worker run over
# spawned worker processes must produce selections byte-identical to
# the single-process reference (--workers 0 writes the reference
# artifact through the same JSONL path), the quick perf snapshot must
# carry the dist/epoch_100k kernel, and the snapshot must round-trip
# through the bench-history append + gate pipeline (the v4 schema
# fingerprint starts its own rolling baseline).
stage_dist() {
    local out=target/ci_dist_stage
    rm -rf "$out"
    mkdir -p "$out"
    local scenario=(--clients 40 --seed 11 --budget 1000000 --min-participants 3 --policy fedl)
    cargo build --release --offline -p fedl-bench
    run_exp dist --workers 0 "${scenario[@]}" --epochs 10 --out "$out/reference.jsonl"
    run_exp dist --workers 2 "${scenario[@]}" --epochs 10 --out "$out/dist.jsonl" \
        --verify-reference
    cmp "$out/dist.jsonl" "$out/reference.jsonl" \
        || { echo "2-worker dist run diverged from the single-process reference" >&2; exit 1; }

    run_exp bench --quick --out "$out/BENCH.json" > /dev/null
    grep -q '"dist/epoch_100k"' "$out/BENCH.json" \
        || { echo "quick snapshot is missing the dist/epoch_100k kernel" >&2; exit 1; }
    run_exp bench-history append "$out/BENCH.json" --history "$out/BENCH_HISTORY.jsonl"
    run_exp bench-history gate "$out/BENCH.json" --history "$out/BENCH_HISTORY.jsonl"
    rm -rf "$out"
}

# Distributed tracing + live metrics plane (docs/TELEMETRY.md): a real
# 2-worker spawned run with tracing on must merge into a cross-process
# trace where every worker shard span resolves to a coordinator epoch
# span (the "(100%)" linkage line), the HTML report must carry both
# SVG panels, and a live `experiments stats` poll against the running
# coordinator must answer with a non-empty registry snapshot mid-run.
stage_trace() {
    local out=target/ci_trace_stage
    rm -rf "$out"
    mkdir -p "$out"
    local scenario=(--clients 40 --seed 11 --budget 1000000 --min-participants 3 --policy fedl)
    cargo build --release --offline -p fedl-bench
    run_exp dist --workers 2 "${scenario[@]}" --epochs 10 --out "$out/dist.jsonl" \
        --telemetry "$out/trace.jsonl" \
        --stats-addr 127.0.0.1:0 --stats-port-file "$out/stats.port"
    for log in trace.jsonl trace.worker-0.jsonl trace.worker-1.jsonl; do
        [ -s "$out/$log" ] || { echo "dist run did not write $log" >&2; exit 1; }
    done
    run_exp trace-report "$out/trace.jsonl" \
        "$out/trace.worker-0.jsonl" "$out/trace.worker-1.jsonl" \
        --html "$out/trace.html" | tee "$out/trace.txt"
    grep -q '(100%)' "$out/trace.txt" \
        || { echo "not every worker span resolved to a coordinator epoch" >&2; exit 1; }
    grep -q 'critical-path attribution' "$out/trace.txt" \
        || { echo "trace report is missing the critical-path table" >&2; exit 1; }
    for panel in trace-waterfall trace-critical-path; do
        grep -q "svg id=\"$panel\"" "$out/trace.html" \
            || { echo "trace HTML is missing the $panel panel" >&2; exit 1; }
    done

    # Live stats: poll a running coordinator (the serve binary blocks
    # until loadgen sends --shutdown, so the window is not racy).
    rm -f "$out/port"
    run_exp serve --addr 127.0.0.1:0 --port-file "$out/port" "${scenario[@]}" \
        --telemetry "$out/serve.jsonl" &
    local server_pid=$!
    for _ in $(seq 300); do [ -s "$out/port" ] && break; sleep 0.1; done
    [ -s "$out/port" ] || { echo "server never wrote its port file" >&2; exit 1; }
    local addr="127.0.0.1:$(cat "$out/port")"
    run_exp stats --addr "$addr" | tee "$out/stats.txt"
    grep -q 'live stats from' "$out/stats.txt" \
        || { echo "stats poll printed no snapshot header" >&2; exit 1; }
    grep -q 'proto.frame_bytes' "$out/stats.txt" \
        || { echo "stats snapshot is missing the wire histograms" >&2; exit 1; }
    run_exp loadgen --addr "$addr" "${scenario[@]}" --epochs 4 --shutdown > /dev/null
    wait "$server_pid"
    rm -rf "$out"
}

# Attribution dashboard: the telemetry round-trip log must render an
# HTML dashboard containing all four chart panels.
stage_dashboard() {
    [ -f results/regret_trace_run.jsonl ] \
        || cargo run --release --offline --example regret_and_trace > /dev/null
    local html=target/ci_dashboard.html
    rm -f "$html"
    run_exp dashboard results/regret_trace_run.jsonl --html "$html" > /dev/null
    for chart in regret-curve budget-burndown selection-heatmap phase-breakdown; do
        grep -q "svg id=\"$chart\"" "$html" \
            || { echo "dashboard HTML is missing chart '$chart'" >&2; exit 1; }
    done
    rm -f "$html"
}

# Multi-run overlay: two policies on the same sample path must overlay
# into one dashboard with both policy legends and both overlay charts.
stage_overlay() {
    cargo run --release --offline --example policy_run_logs > /dev/null
    local html=target/ci_overlay.html
    rm -f "$html"
    run_exp dashboard results/overlay_fedl_run.jsonl results/overlay_fedavg_run.jsonl \
        --html "$html" > /dev/null
    for chart in regret-overlay budget-overlay; do
        grep -q "svg id=\"$chart\"" "$html" \
            || { echo "overlay HTML is missing chart '$chart'" >&2; exit 1; }
    done
    for policy in FedL FedAvg; do
        grep -q "class=\"legend\">$policy<" "$html" \
            || { echo "overlay HTML is missing the $policy legend" >&2; exit 1; }
    done
    rm -f "$html"
}

usage() {
    echo "usage: scripts/ci.sh [--list] [--stage NAME]..." >&2
    echo "stages: ${STAGES[*]}" >&2
}

SELECTED=()
while [ $# -gt 0 ]; do
    case "$1" in
        --list)
            printf '%s\n' "${STAGES[@]}"
            exit 0
            ;;
        --stage)
            [ $# -ge 2 ] || { echo "--stage needs a name" >&2; usage; exit 1; }
            SELECTED+=("$2")
            shift 2
            ;;
        -h|--help)
            usage
            exit 0
            ;;
        *)
            echo "unknown argument: $1" >&2
            usage
            exit 1
            ;;
    esac
done
[ ${#SELECTED[@]} -gt 0 ] || SELECTED=("${STAGES[@]}")

# Validate the selection up front so a typo fails before any work runs.
for name in "${SELECTED[@]}"; do
    case " ${STAGES[*]} " in
        *" $name "*) ;;
        *) echo "unknown stage: $name" >&2; usage; exit 1 ;;
    esac
done

SUMMARY=()
for name in "${SELECTED[@]}"; do
    echo "==> stage: $name"
    CURRENT_STAGE=$name
    CURRENT_START=$(date +%s)
    CI_STAGE_STATUS=pass
    CI_STAGE_NOTE=""
    "stage_${name//-/_}"
    end=$(date +%s)
    record_stage "$name" "$((end - CURRENT_START))" "$CI_STAGE_STATUS" "$CI_STAGE_NOTE"
    SUMMARY+=("$(printf '%-14s %4ds  %-4s %s' "$name" "$((end - CURRENT_START))" \
        "$CI_STAGE_STATUS" "$CI_STAGE_NOTE")")
    CURRENT_STAGE=""
done
write_stage_json

echo "==> stage summary"
printf '    %s\n' "${SUMMARY[@]}"
echo "==> stage ledger: $STAGE_JSON"
echo "==> OK"
