#!/usr/bin/env bash
# Tier-1 verification: hermetic offline build + tests + docs.
#
# --offline is load-bearing: the workspace must never need the crates.io
# registry (see docs/BUILD.md). A PR that introduces a registry
# dependency fails here at dependency resolution, before compiling.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo doc --no-deps --offline"
RUSTDOCFLAGS="${RUSTDOCFLAGS:--D warnings}" cargo doc --no-deps --offline --workspace

# Telemetry smoke: a real run must emit a parseable JSONL log holding
# every event kind in the schema (docs/TELEMETRY.md), and the
# telemetry-report subcommand must accept it.
echo "==> telemetry run log round-trip"
cargo run --release --offline --example regret_and_trace > /dev/null
cargo run --release --offline -p fedl-bench --bin experiments -- \
    telemetry-report results/regret_trace_run.jsonl \
    --require run_start,epoch,train,ledger,span,metrics,run_end

# Checkpoint round-trip (docs/CHECKPOINT.md): run a few epochs, "kill"
# the process, resume from the snapshot, and demand a bit-identical
# RunOutcome. The example exits non-zero on any divergence; the report
# then proves the save/restore events actually flowed through telemetry.
echo "==> checkpoint interrupt/resume round-trip"
cargo run --release --offline --example checkpoint_resume > /dev/null
cargo run --release --offline -p fedl-bench --bin experiments -- \
    telemetry-report results/checkpoint_run.jsonl \
    --require checkpoint.saved,checkpoint.restored,epoch,run_start,run_end

# Warm result cache: a repeat figure invocation must be served from the
# content-addressed cache (cache.hit required in the run log) and must
# regenerate byte-identical CSVs.
echo "==> warm result cache serves identical figures"
CACHE_OUT=target/ci_cache_stage
rm -rf "$CACHE_OUT"
cargo run --release --offline -p fedl-bench --bin experiments -- \
    --quick --out "$CACHE_OUT" --resume fig6 > /dev/null
cp "$CACHE_OUT"/fig6_iid.csv "$CACHE_OUT"/fig6_iid.cold.csv
cp "$CACHE_OUT"/fig6_noniid.csv "$CACHE_OUT"/fig6_noniid.cold.csv
cargo run --release --offline -p fedl-bench --bin experiments -- \
    --quick --out "$CACHE_OUT" --resume fig6 > /dev/null
cmp "$CACHE_OUT"/fig6_iid.cold.csv "$CACHE_OUT"/fig6_iid.csv
cmp "$CACHE_OUT"/fig6_noniid.cold.csv "$CACHE_OUT"/fig6_noniid.csv
cargo run --release --offline -p fedl-bench --bin experiments -- \
    telemetry-report "$CACHE_OUT"/cache_run.jsonl --require cache.hit
rm -rf "$CACHE_OUT"

echo "==> OK"
